package pubsub

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Wire formats. Publishers and clients serialise events and
// subscription specs with attribute *names* (they cannot know the
// engine's intern table); the engine interns at its trusted boundary
// after decryption. All integers are little-endian.

// ErrCodec indicates a malformed serialised value.
var ErrCodec = errors.New("pubsub: malformed encoding")

// NamedValue is one attribute of a wire-level event.
type NamedValue struct {
	Name  string
	Value Value
}

// EventSpec is the wire-level publication header.
type EventSpec struct {
	Attrs []NamedValue
}

// EncodeEventSpec serialises a header for encryption and transport.
func EncodeEventSpec(spec EventSpec) ([]byte, error) {
	if len(spec.Attrs) > math.MaxUint16 {
		return nil, fmt.Errorf("pubsub: too many attributes (%d)", len(spec.Attrs))
	}
	buf := make([]byte, 2, 32*len(spec.Attrs)+2)
	binary.LittleEndian.PutUint16(buf, uint16(len(spec.Attrs)))
	for _, a := range spec.Attrs {
		var err error
		buf, err = appendString8(buf, a.Name)
		if err != nil {
			return nil, err
		}
		buf, err = appendValue(buf, a.Value)
		if err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// DecodeEventSpec parses a header produced by EncodeEventSpec.
func DecodeEventSpec(raw []byte) (EventSpec, error) {
	var spec EventSpec
	r := reader{buf: raw}
	n, err := r.uint16()
	if err != nil {
		return spec, err
	}
	spec.Attrs = make([]NamedValue, 0, n)
	for i := 0; i < int(n); i++ {
		name, err := r.string8()
		if err != nil {
			return spec, err
		}
		v, err := r.value()
		if err != nil {
			return spec, err
		}
		spec.Attrs = append(spec.Attrs, NamedValue{Name: name, Value: v})
	}
	if !r.done() {
		return spec, fmt.Errorf("%w: %d trailing bytes", ErrCodec, r.remaining())
	}
	return spec, nil
}

// Intern converts a wire event into the engine's Event form.
func (spec EventSpec) Intern(schema *Schema) (*Event, error) {
	attrs := make(map[string]Value, len(spec.Attrs))
	for _, a := range spec.Attrs {
		attrs[a.Name] = a.Value
	}
	return NewEvent(schema, attrs)
}

// EncodeSubscriptionSpec serialises a subscription spec for the
// client→publisher and publisher→engine legs.
func EncodeSubscriptionSpec(spec SubscriptionSpec) ([]byte, error) {
	if len(spec.Predicates) > math.MaxUint16 {
		return nil, fmt.Errorf("pubsub: too many predicates (%d)", len(spec.Predicates))
	}
	buf := make([]byte, 2, 32*len(spec.Predicates)+2)
	binary.LittleEndian.PutUint16(buf, uint16(len(spec.Predicates)))
	for _, p := range spec.Predicates {
		var err error
		buf, err = appendString8(buf, p.Attr)
		if err != nil {
			return nil, err
		}
		buf = append(buf, byte(p.Op))
		buf, err = appendValue(buf, p.Value)
		if err != nil {
			return nil, err
		}
		if p.Op == OpBetween {
			buf, err = appendValue(buf, p.Hi)
			if err != nil {
				return nil, err
			}
		}
	}
	return buf, nil
}

// DecodeSubscriptionSpec parses EncodeSubscriptionSpec output.
func DecodeSubscriptionSpec(raw []byte) (SubscriptionSpec, error) {
	var spec SubscriptionSpec
	r := reader{buf: raw}
	n, err := r.uint16()
	if err != nil {
		return spec, err
	}
	spec.Predicates = make([]Predicate, 0, n)
	for i := 0; i < int(n); i++ {
		var p Predicate
		if p.Attr, err = r.string8(); err != nil {
			return spec, err
		}
		op, err := r.byte()
		if err != nil {
			return spec, err
		}
		p.Op = Op(op)
		if p.Value, err = r.value(); err != nil {
			return spec, err
		}
		if p.Op == OpBetween {
			if p.Hi, err = r.value(); err != nil {
				return spec, err
			}
		}
		spec.Predicates = append(spec.Predicates, p)
	}
	if !r.done() {
		return spec, fmt.Errorf("%w: %d trailing bytes", ErrCodec, r.remaining())
	}
	return spec, nil
}

// Compact constraint encoding — the form stored in enclave arena
// records. Layout per constraint:
//
//	id u16 | flags u8 | payload
//
// flags: bit0 Str, bit1 HasLo, bit2 HasHi, bit3 LoIncl, bit4 HiIncl.
// payload: string (u16 len + bytes) when Str, else Lo f64 when HasLo
// followed by Hi f64 when HasHi.
const (
	cfStr uint8 = 1 << iota
	cfHasLo
	cfHasHi
	cfLoIncl
	cfHiIncl
	cfPrefix
)

// AppendConstraints serialises a normalised subscription's constraints.
func AppendConstraints(buf []byte, cs []Constraint) ([]byte, error) {
	if len(cs) > math.MaxUint16 {
		return nil, fmt.Errorf("pubsub: too many constraints (%d)", len(cs))
	}
	var u16 [2]byte
	binary.LittleEndian.PutUint16(u16[:], uint16(len(cs)))
	buf = append(buf, u16[:]...)
	for _, c := range cs {
		binary.LittleEndian.PutUint16(u16[:], uint16(c.ID))
		buf = append(buf, u16[:]...)
		var flags uint8
		if c.Str {
			flags |= cfStr
		}
		if c.Prefix {
			flags |= cfPrefix
		}
		if c.HasLo {
			flags |= cfHasLo
		}
		if c.HasHi {
			flags |= cfHasHi
		}
		if c.LoIncl {
			flags |= cfLoIncl
		}
		if c.HiIncl {
			flags |= cfHiIncl
		}
		buf = append(buf, flags)
		if c.Str {
			if len(c.EqS) > math.MaxUint16 {
				return nil, fmt.Errorf("pubsub: string constraint too long (%d)", len(c.EqS))
			}
			binary.LittleEndian.PutUint16(u16[:], uint16(len(c.EqS)))
			buf = append(buf, u16[:]...)
			buf = append(buf, c.EqS...)
			continue
		}
		var f64 [8]byte
		if c.HasLo {
			binary.LittleEndian.PutUint64(f64[:], math.Float64bits(c.Lo))
			buf = append(buf, f64[:]...)
		}
		if c.HasHi {
			binary.LittleEndian.PutUint64(f64[:], math.Float64bits(c.Hi))
			buf = append(buf, f64[:]...)
		}
	}
	return buf, nil
}

// DecodeConstraints parses AppendConstraints output and returns the
// constraints plus the number of bytes consumed.
func DecodeConstraints(raw []byte) ([]Constraint, int, error) {
	return DecodeConstraintsInto(nil, raw)
}

// DecodeConstraintsInto is DecodeConstraints reusing dst's backing
// array; the matching engine calls it on every node visit, so avoiding
// the per-visit allocation matters.
func DecodeConstraintsInto(dst []Constraint, raw []byte) ([]Constraint, int, error) {
	r := reader{buf: raw}
	n, err := r.uint16()
	if err != nil {
		return nil, 0, err
	}
	cs := dst[:0]
	if cap(cs) < int(n) {
		cs = make([]Constraint, 0, n)
	}
	for i := 0; i < int(n); i++ {
		id, err := r.uint16()
		if err != nil {
			return nil, 0, err
		}
		flags, err := r.byte()
		if err != nil {
			return nil, 0, err
		}
		c := Constraint{
			ID:     AttrID(id),
			Str:    flags&cfStr != 0,
			Prefix: flags&cfPrefix != 0,
			HasLo:  flags&cfHasLo != 0,
			HasHi:  flags&cfHasHi != 0,
			LoIncl: flags&cfLoIncl != 0,
			HiIncl: flags&cfHiIncl != 0,
		}
		if c.Str {
			if c.EqS, err = r.string16(); err != nil {
				return nil, 0, err
			}
		} else {
			if c.HasLo {
				if c.Lo, err = r.float64(); err != nil {
					return nil, 0, err
				}
			}
			if c.HasHi {
				if c.Hi, err = r.float64(); err != nil {
					return nil, 0, err
				}
			}
		}
		cs = append(cs, c)
	}
	return cs, r.pos, nil
}

// value kind tags on the wire.
const (
	wireInt    = 1
	wireFloat  = 2
	wireString = 3
)

func appendValue(buf []byte, v Value) ([]byte, error) {
	var u64 [8]byte
	switch v.Kind {
	case KindInt:
		buf = append(buf, wireInt)
		binary.LittleEndian.PutUint64(u64[:], uint64(v.I))
		return append(buf, u64[:]...), nil
	case KindFloat:
		buf = append(buf, wireFloat)
		binary.LittleEndian.PutUint64(u64[:], math.Float64bits(v.F))
		return append(buf, u64[:]...), nil
	case KindString:
		if len(v.S) > math.MaxUint16 {
			return nil, fmt.Errorf("pubsub: string value too long (%d)", len(v.S))
		}
		buf = append(buf, wireString)
		var u16 [2]byte
		binary.LittleEndian.PutUint16(u16[:], uint16(len(v.S)))
		buf = append(buf, u16[:]...)
		return append(buf, v.S...), nil
	default:
		return nil, fmt.Errorf("pubsub: cannot encode invalid value kind %d", v.Kind)
	}
}

func appendString8(buf []byte, s string) ([]byte, error) {
	if len(s) > math.MaxUint8 {
		return nil, fmt.Errorf("pubsub: attribute name too long (%d)", len(s))
	}
	buf = append(buf, byte(len(s)))
	return append(buf, s...), nil
}

// reader is a bounds-checked little-endian cursor.
type reader struct {
	buf []byte
	pos int
}

func (r *reader) need(n int) error {
	if r.pos+n > len(r.buf) {
		return fmt.Errorf("%w: need %d bytes at offset %d, have %d", ErrCodec, n, r.pos, len(r.buf)-r.pos)
	}
	return nil
}

func (r *reader) byte() (byte, error) {
	if err := r.need(1); err != nil {
		return 0, err
	}
	b := r.buf[r.pos]
	r.pos++
	return b, nil
}

func (r *reader) uint16() (uint16, error) {
	if err := r.need(2); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint16(r.buf[r.pos:])
	r.pos += 2
	return v, nil
}

func (r *reader) uint64() (uint64, error) {
	if err := r.need(8); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint64(r.buf[r.pos:])
	r.pos += 8
	return v, nil
}

func (r *reader) float64() (float64, error) {
	u, err := r.uint64()
	return math.Float64frombits(u), err
}

func (r *reader) string8() (string, error) {
	n, err := r.byte()
	if err != nil {
		return "", err
	}
	if err := r.need(int(n)); err != nil {
		return "", err
	}
	s := string(r.buf[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s, nil
}

func (r *reader) string16() (string, error) {
	n, err := r.uint16()
	if err != nil {
		return "", err
	}
	if err := r.need(int(n)); err != nil {
		return "", err
	}
	s := string(r.buf[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s, nil
}

func (r *reader) value() (Value, error) {
	tag, err := r.byte()
	if err != nil {
		return Value{}, err
	}
	switch tag {
	case wireInt:
		u, err := r.uint64()
		return Value{Kind: KindInt, I: int64(u)}, err
	case wireFloat:
		f, err := r.float64()
		return Value{Kind: KindFloat, F: f}, err
	case wireString:
		s, err := r.string16()
		return Value{Kind: KindString, S: s}, err
	default:
		return Value{}, fmt.Errorf("%w: unknown value tag %d", ErrCodec, tag)
	}
}

func (r *reader) done() bool     { return r.pos == len(r.buf) }
func (r *reader) remaining() int { return len(r.buf) - r.pos }
