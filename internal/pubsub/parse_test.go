package pubsub

import "testing"

func TestParseSpecPaperExample(t *testing.T) {
	spec, err := ParseSpec(`symbol = "HAL", price < 50`)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Predicates) != 2 {
		t.Fatalf("predicates = %d", len(spec.Predicates))
	}
	p0, p1 := spec.Predicates[0], spec.Predicates[1]
	if p0.Attr != "symbol" || p0.Op != OpEq || p0.Value.S != "HAL" {
		t.Fatalf("p0 = %+v", p0)
	}
	if p1.Attr != "price" || p1.Op != OpLt || p1.Value.F != 50 {
		t.Fatalf("p1 = %+v", p1)
	}
}

func TestParseSpecOperatorsAndSeparators(t *testing.T) {
	spec, err := ParseSpec("a >= 1 && b <= 2 and c > 3, d < 4, e = sym")
	if err != nil {
		t.Fatal(err)
	}
	wantOps := []Op{OpGe, OpLe, OpGt, OpLt, OpEq}
	if len(spec.Predicates) != len(wantOps) {
		t.Fatalf("predicates = %v", spec.Predicates)
	}
	for i, p := range spec.Predicates {
		if p.Op != wantOps[i] {
			t.Fatalf("pred %d op = %v, want %v", i, p.Op, wantOps[i])
		}
	}
	// Bare string only valid for equality.
	if spec.Predicates[4].Value.Kind != KindString {
		t.Fatalf("bare string not parsed: %+v", spec.Predicates[4])
	}
}

func TestParseSpecRange(t *testing.T) {
	for _, expr := range []string{"price in [10..50]", "price in [10;50]", "price IN [10 .. 50]"} {
		spec, err := ParseSpec(expr)
		if err != nil {
			t.Fatalf("%q: %v", expr, err)
		}
		p := spec.Predicates[0]
		if p.Op != OpBetween || p.Value.F != 10 || p.Hi.F != 50 {
			t.Fatalf("%q parsed to %+v", expr, p)
		}
	}
}

func TestParseSpecNormalises(t *testing.T) {
	spec, err := ParseSpec("price in [10..50], symbol = HAL")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := Normalize(NewSchema(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Constraints) != 2 {
		t.Fatalf("constraints = %+v", sub.Constraints)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, expr := range []string{
		"",
		"   ",
		"price",
		"< 50",
		"price <",
		"price < fifty",
		"price in [10, 50]", // comma inside brackets unsupported; '..' required
		"price in 10..50",
		"price in [10..]",
		`symbol = "unterminated`,
	} {
		if _, err := ParseSpec(expr); err == nil {
			t.Errorf("%q parsed without error", expr)
		}
	}
}
