package pubsub

import (
	"errors"
	"fmt"
	"strings"
)

// Op is a predicate operator.
type Op uint8

// Predicate operators. The paper's subscriptions combine equality
// constraints with "generally any kind of ranges over the values of
// the attributes" (§3.2); these operators span that space.
const (
	OpEq Op = iota + 1
	OpLt
	OpLe
	OpGt
	OpGe
	OpBetween // inclusive on both ends
	// OpPrefix matches string values beginning with the operand. An
	// extension over the paper's equality/range predicates, inspired by
	// the prefix-matching schemes of its related work (Li et al.; Ion
	// et al.); prefixes participate in containment (prefix "ab" covers
	// both "abc..." prefixes and symbol = "abX" equalities).
	OpPrefix
)

func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpBetween:
		return "between"
	case OpPrefix:
		return "prefix"
	default:
		return "op?"
	}
}

// Predicate is one constraint of a subscription in its user-facing
// form, e.g. symbol = "HAL" or price < 50.
type Predicate struct {
	Attr  string
	Op    Op
	Value Value
	// Hi is the upper bound for OpBetween and unused otherwise.
	Hi Value
}

func (p Predicate) String() string {
	if p.Op == OpBetween {
		return fmt.Sprintf("%s in [%s, %s]", p.Attr, p.Value, p.Hi)
	}
	return fmt.Sprintf("%s %s %s", p.Attr, p.Op, p.Value)
}

// SubscriptionSpec is the wire-level form of a subscription: a
// conjunction of predicates, attribute names not yet interned.
type SubscriptionSpec struct {
	Predicates []Predicate
}

func (s SubscriptionSpec) String() string {
	parts := make([]string, len(s.Predicates))
	for i, p := range s.Predicates {
		parts[i] = p.String()
	}
	return strings.Join(parts, " ∧ ")
}

// Errors returned while normalising specs.
var (
	ErrEmptySubscription = errors.New("pubsub: subscription has no predicates")
	ErrUnsatisfiable     = errors.New("pubsub: subscription is unsatisfiable")
)

// validate checks a single predicate for structural problems.
func (p Predicate) validate() error {
	if p.Attr == "" {
		return errors.New("pubsub: predicate with empty attribute name")
	}
	if !p.Value.Valid() {
		return fmt.Errorf("pubsub: predicate on %q has invalid value", p.Attr)
	}
	switch p.Op {
	case OpEq:
		return nil
	case OpLt, OpLe, OpGt, OpGe:
		if !p.Value.Numeric() {
			return fmt.Errorf("pubsub: range operator %s on non-numeric attribute %q", p.Op, p.Attr)
		}
		return nil
	case OpBetween:
		if !p.Value.Numeric() || !p.Hi.Numeric() {
			return fmt.Errorf("pubsub: between on non-numeric attribute %q", p.Attr)
		}
		return nil
	case OpPrefix:
		if p.Value.Kind != KindString {
			return fmt.Errorf("pubsub: prefix operator on non-string attribute %q", p.Attr)
		}
		return nil
	default:
		return fmt.Errorf("pubsub: unknown operator %d on %q", p.Op, p.Attr)
	}
}
