package pubsub

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
)

func mustNormalize(t *testing.T, schema *Schema, spec SubscriptionSpec) *Subscription {
	t.Helper()
	sub, err := Normalize(schema, spec)
	if err != nil {
		t.Fatalf("Normalize(%v): %v", spec, err)
	}
	return sub
}

func TestNormalizeMergesPredicates(t *testing.T) {
	schema := NewSchema()
	sub := mustNormalize(t, schema, SubscriptionSpec{Predicates: []Predicate{
		{Attr: "price", Op: OpGt, Value: Float(10)},
		{Attr: "price", Op: OpLe, Value: Float(50)},
		{Attr: "symbol", Op: OpEq, Value: Str("HAL")},
	}})
	if len(sub.Constraints) != 2 {
		t.Fatalf("constraints = %d, want 2", len(sub.Constraints))
	}
	var price Constraint
	for _, c := range sub.Constraints {
		if !c.Str {
			price = c
		}
	}
	if !price.HasLo || price.LoIncl || price.Lo != 10 {
		t.Fatalf("lower bound wrong: %+v", price)
	}
	if !price.HasHi || !price.HiIncl || price.Hi != 50 {
		t.Fatalf("upper bound wrong: %+v", price)
	}
}

func TestNormalizeRejectsBadSpecs(t *testing.T) {
	schema := NewSchema()
	cases := []struct {
		name string
		spec SubscriptionSpec
		want error
	}{
		{"empty", SubscriptionSpec{}, ErrEmptySubscription},
		{"inverted range", SubscriptionSpec{Predicates: []Predicate{
			{Attr: "x", Op: OpGt, Value: Float(10)},
			{Attr: "x", Op: OpLt, Value: Float(5)},
		}}, ErrUnsatisfiable},
		{"open point", SubscriptionSpec{Predicates: []Predicate{
			{Attr: "x", Op: OpGt, Value: Float(10)},
			{Attr: "x", Op: OpLt, Value: Float(10)},
		}}, ErrUnsatisfiable},
		{"string vs numeric", SubscriptionSpec{Predicates: []Predicate{
			{Attr: "x", Op: OpEq, Value: Str("a")},
			{Attr: "x", Op: OpGt, Value: Float(1)},
		}}, ErrUnsatisfiable},
		{"two strings", SubscriptionSpec{Predicates: []Predicate{
			{Attr: "x", Op: OpEq, Value: Str("a")},
			{Attr: "x", Op: OpEq, Value: Str("b")},
		}}, ErrUnsatisfiable},
		{"between inverted", SubscriptionSpec{Predicates: []Predicate{
			{Attr: "x", Op: OpBetween, Value: Float(5), Hi: Float(1)},
		}}, ErrUnsatisfiable},
	}
	for _, tc := range cases {
		if _, err := Normalize(schema, tc.spec); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
	// Structural errors.
	bad := []SubscriptionSpec{
		{Predicates: []Predicate{{Attr: "", Op: OpEq, Value: Float(1)}}},
		{Predicates: []Predicate{{Attr: "x", Op: OpEq}}},
		{Predicates: []Predicate{{Attr: "x", Op: OpLt, Value: Str("s")}}},
		{Predicates: []Predicate{{Attr: "x", Op: Op(99), Value: Float(1)}}},
		{Predicates: []Predicate{{Attr: "x", Op: OpBetween, Value: Str("a"), Hi: Str("b")}}},
	}
	for i, spec := range bad {
		if _, err := Normalize(schema, spec); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestOpenClosedBoundSemantics(t *testing.T) {
	schema := NewSchema()
	lt := mustNormalize(t, schema, SubscriptionSpec{Predicates: []Predicate{{Attr: "p", Op: OpLt, Value: Float(50)}}})
	le := mustNormalize(t, schema, SubscriptionSpec{Predicates: []Predicate{{Attr: "p", Op: OpLe, Value: Float(50)}}})
	ev := func(v float64) *Event {
		e, err := NewEvent(schema, map[string]Value{"p": Float(v)})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	if !lt.Matches(ev(49.99)) || lt.Matches(ev(50)) {
		t.Fatal("OpLt boundary wrong")
	}
	if !le.Matches(ev(50)) || le.Matches(ev(50.01)) {
		t.Fatal("OpLe boundary wrong")
	}
	// le covers lt but not vice versa.
	if !le.Covers(lt) {
		t.Fatal("x<=50 must cover x<50")
	}
	if lt.Covers(le) {
		t.Fatal("x<50 must not cover x<=50")
	}
}

func TestMatchRequiresAttributePresence(t *testing.T) {
	schema := NewSchema()
	sub := mustNormalize(t, schema, SubscriptionSpec{Predicates: []Predicate{
		{Attr: "symbol", Op: OpEq, Value: Str("HAL")},
		{Attr: "price", Op: OpLt, Value: Float(50)},
	}})
	e1, err := NewEvent(schema, map[string]Value{"symbol": Str("HAL")})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Matches(e1) {
		t.Fatal("event missing constrained attribute matched")
	}
	e2, err := NewEvent(schema, map[string]Value{
		"symbol": Str("HAL"), "price": Float(42), "volume": Int(1000),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sub.Matches(e2) {
		t.Fatal("matching event rejected")
	}
	// Type mismatch: string constraint vs numeric value.
	e3, err := NewEvent(schema, map[string]Value{"symbol": Float(1), "price": Float(42)})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Matches(e3) {
		t.Fatal("numeric value satisfied string equality")
	}
}

func TestPaperCoveringExamples(t *testing.T) {
	// "x > 0" covers both "x = 1" and "x > 0 ∧ y = 1" (§3.2).
	schema := NewSchema()
	xPos := mustNormalize(t, schema, SubscriptionSpec{Predicates: []Predicate{
		{Attr: "x", Op: OpGt, Value: Float(0)},
	}})
	xEq1 := mustNormalize(t, schema, SubscriptionSpec{Predicates: []Predicate{
		{Attr: "x", Op: OpEq, Value: Float(1)},
	}})
	xPosYEq1 := mustNormalize(t, schema, SubscriptionSpec{Predicates: []Predicate{
		{Attr: "x", Op: OpGt, Value: Float(0)},
		{Attr: "y", Op: OpEq, Value: Float(1)},
	}})
	if !xPos.Covers(xEq1) || !xPos.Covers(xPosYEq1) {
		t.Fatal("paper covering examples violated")
	}
	if xEq1.Covers(xPos) || xPosYEq1.Covers(xPos) {
		t.Fatal("covering must not be symmetric here")
	}
	if !xPos.Covers(xPos) {
		t.Fatal("covering must be reflexive")
	}
}

// randomSub draws constraints over a small universe so that coverage
// relations actually occur.
func randomSub(t *testing.T, rng *rand.Rand, schema *Schema) *Subscription {
	t.Helper()
	attrs := []string{"a", "b", "c"}
	nPreds := 1 + rng.Intn(3)
	spec := SubscriptionSpec{}
	for i := 0; i < nPreds; i++ {
		attr := attrs[rng.Intn(len(attrs))]
		switch rng.Intn(4) {
		case 0:
			spec.Predicates = append(spec.Predicates,
				Predicate{Attr: attr, Op: OpEq, Value: Float(float64(rng.Intn(5)))})
		case 1:
			spec.Predicates = append(spec.Predicates,
				Predicate{Attr: attr, Op: OpLt, Value: Float(float64(rng.Intn(10)))})
		case 2:
			spec.Predicates = append(spec.Predicates,
				Predicate{Attr: attr, Op: OpGe, Value: Float(float64(rng.Intn(10) - 5))})
		default:
			lo := float64(rng.Intn(8) - 4)
			spec.Predicates = append(spec.Predicates,
				Predicate{Attr: attr, Op: OpBetween, Value: Float(lo), Hi: Float(lo + float64(rng.Intn(5)))})
		}
	}
	sub, err := Normalize(schema, spec)
	if err != nil {
		return nil // unsatisfiable draw; caller retries
	}
	return sub
}

func randomEvent(t *testing.T, rng *rand.Rand, schema *Schema) *Event {
	t.Helper()
	attrs := map[string]Value{}
	for _, name := range []string{"a", "b", "c"} {
		if rng.Intn(4) > 0 {
			attrs[name] = Float(float64(rng.Intn(12) - 6))
		}
	}
	e, err := NewEvent(schema, attrs)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestCoveringSoundness is the paper's definition of containment:
// s ⊒ t ⇒ every event matching t matches s.
func TestCoveringSoundness(t *testing.T) {
	schema := NewSchema()
	rng := rand.New(rand.NewSource(42))
	covered := 0
	for i := 0; i < 20000; i++ {
		s, u := randomSub(t, rng, schema), randomSub(t, rng, schema)
		if s == nil || u == nil {
			continue
		}
		if !s.Covers(u) {
			continue
		}
		covered++
		for j := 0; j < 20; j++ {
			e := randomEvent(t, rng, schema)
			if u.Matches(e) && !s.Matches(e) {
				t.Fatalf("covering unsound: s=%+v u=%+v event=%+v", s, u, e)
			}
		}
	}
	if covered < 100 {
		t.Fatalf("only %d covered pairs generated; test too weak", covered)
	}
}

func TestCoveringTransitive(t *testing.T) {
	schema := NewSchema()
	rng := rand.New(rand.NewSource(7))
	hits := 0
	for i := 0; i < 120000; i++ {
		s, u, v := randomSub(t, rng, schema), randomSub(t, rng, schema), randomSub(t, rng, schema)
		if s == nil || u == nil || v == nil {
			continue
		}
		if s.Covers(u) && u.Covers(v) {
			hits++
			if !s.Covers(v) {
				t.Fatalf("transitivity violated: s=%+v u=%+v v=%+v", s, u, v)
			}
		}
	}
	if hits < 50 {
		t.Fatalf("only %d transitive triples generated; test too weak", hits)
	}
}

func TestConstraintEqualAndEquality(t *testing.T) {
	schema := NewSchema()
	a := mustNormalize(t, schema, SubscriptionSpec{Predicates: []Predicate{
		{Attr: "symbol", Op: OpEq, Value: Str("IBM")},
		{Attr: "price", Op: OpEq, Value: Float(10)},
		{Attr: "volume", Op: OpGt, Value: Float(0)},
	}})
	if got := a.NumEqualities(); got != 2 {
		t.Fatalf("NumEqualities = %d, want 2", got)
	}
	id, v, ok := a.EqualityAttr()
	if !ok {
		t.Fatal("EqualityAttr not found")
	}
	name, _ := schema.Name(id)
	// Constraints sort by ID; "symbol" was interned first.
	if name != "symbol" || v.S != "IBM" {
		t.Fatalf("EqualityAttr = %s %v", name, v)
	}
	b := mustNormalize(t, schema, SubscriptionSpec{Predicates: []Predicate{
		{Attr: "volume", Op: OpGt, Value: Float(0)},
	}})
	if _, _, ok := b.EqualityAttr(); ok {
		t.Fatal("range-only subscription reported an equality")
	}
	if !a.Equal(a) || a.Equal(b) {
		t.Fatal("Equal wrong")
	}
}

func TestSchemaIntern(t *testing.T) {
	s := NewSchema()
	id1, err := s.Intern("alpha")
	if err != nil {
		t.Fatal(err)
	}
	id2, err := s.Intern("beta")
	if err != nil {
		t.Fatal(err)
	}
	id1b, err := s.Intern("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id1b || id1 == id2 {
		t.Fatalf("intern ids wrong: %d %d %d", id1, id2, id1b)
	}
	if name, ok := s.Name(id2); !ok || name != "beta" {
		t.Fatalf("Name(%d) = %q, %v", id2, name, ok)
	}
	if _, ok := s.Name(999); ok {
		t.Fatal("Name of unknown id succeeded")
	}
	if _, ok := s.Lookup("alpha"); !ok {
		t.Fatal("Lookup failed")
	}
	if _, ok := s.Lookup("gamma"); ok {
		t.Fatal("Lookup invented an attribute")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "beta" {
		t.Fatalf("Names = %v", names)
	}
}

func TestEventGet(t *testing.T) {
	schema := NewSchema()
	e, err := NewEvent(schema, map[string]Value{
		"a": Float(1), "b": Float(2), "c": Float(3), "d": Float(4), "e": Float(5),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b", "c", "d", "e"} {
		id, _ := schema.Lookup(name)
		if v, ok := e.Get(id); !ok || !v.Numeric() {
			t.Fatalf("Get(%s) failed", name)
		}
	}
	if _, ok := e.Get(9999); ok {
		t.Fatal("Get of absent attribute succeeded")
	}
}

func TestEventSpecCodecRoundTrip(t *testing.T) {
	spec := EventSpec{Attrs: []NamedValue{
		{Name: "symbol", Value: Str("HAL")},
		{Name: "price", Value: Float(49.5)},
		{Name: "volume", Value: Int(120000)},
	}}
	raw, err := EncodeEventSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEventSpec(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Attrs) != 3 {
		t.Fatalf("attrs = %d", len(got.Attrs))
	}
	for i := range spec.Attrs {
		if got.Attrs[i].Name != spec.Attrs[i].Name || !got.Attrs[i].Value.Equal(spec.Attrs[i].Value) {
			t.Fatalf("attr %d mismatch: %+v vs %+v", i, got.Attrs[i], spec.Attrs[i])
		}
	}
}

func TestSubscriptionSpecCodecRoundTrip(t *testing.T) {
	spec := SubscriptionSpec{Predicates: []Predicate{
		{Attr: "symbol", Op: OpEq, Value: Str("HAL")},
		{Attr: "price", Op: OpBetween, Value: Float(10), Hi: Float(50)},
		{Attr: "volume", Op: OpGe, Value: Int(100)},
	}}
	raw, err := EncodeSubscriptionSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSubscriptionSpec(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Predicates) != 3 {
		t.Fatalf("predicates = %d", len(got.Predicates))
	}
	for i := range spec.Predicates {
		p, q := spec.Predicates[i], got.Predicates[i]
		if p.Attr != q.Attr || p.Op != q.Op || !p.Value.Equal(q.Value) {
			t.Fatalf("predicate %d mismatch: %+v vs %+v", i, p, q)
		}
	}
	if !got.Predicates[1].Hi.Equal(Float(50)) {
		t.Fatal("between Hi lost")
	}
}

func TestCodecRejectsMalformed(t *testing.T) {
	// Truncations of a valid encoding must all fail cleanly.
	spec := EventSpec{Attrs: []NamedValue{
		{Name: "symbol", Value: Str("HAL")},
		{Name: "price", Value: Float(49.5)},
	}}
	raw, err := EncodeEventSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(raw); n++ {
		if _, err := DecodeEventSpec(raw[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	// Trailing garbage must fail.
	if _, err := DecodeEventSpec(append(raw, 0xFF)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	// Unknown value tag must fail.
	bad := []byte{1, 0, 1, 'x', 99}
	if _, err := DecodeEventSpec(bad); err == nil {
		t.Fatal("unknown value tag accepted")
	}
}

func TestConstraintCodecRoundTrip(t *testing.T) {
	schema := NewSchema()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		sub := randomSub(t, rng, schema)
		if sub == nil {
			continue
		}
		raw, err := AppendConstraints(nil, sub.Constraints)
		if err != nil {
			t.Fatal(err)
		}
		cs, n, err := DecodeConstraints(raw)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(raw) {
			t.Fatalf("consumed %d of %d bytes", n, len(raw))
		}
		decoded := &Subscription{Constraints: cs}
		if !decoded.Equal(sub) {
			t.Fatalf("constraint codec round trip mismatch:\n%+v\n%+v", decoded, sub)
		}
	}
	// String constraints too.
	sub := mustNormalize(t, schema, SubscriptionSpec{Predicates: []Predicate{
		{Attr: "symbol", Op: OpEq, Value: Str("MSFT")},
		{Attr: "price", Op: OpLt, Value: Float(50)},
	}})
	raw, err := AppendConstraints(nil, sub.Constraints)
	if err != nil {
		t.Fatal(err)
	}
	cs, _, err := DecodeConstraints(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !(&Subscription{Constraints: cs}).Equal(sub) {
		t.Fatal("string constraint round trip failed")
	}
	// Truncations fail.
	for n := 0; n < len(raw); n++ {
		if _, _, err := DecodeConstraints(raw[:n]); err == nil {
			t.Fatalf("constraint truncation to %d accepted", n)
		}
	}
}

func TestValueBasics(t *testing.T) {
	if !Int(5).Numeric() || !Float(1.5).Numeric() || Str("x").Numeric() {
		t.Fatal("Numeric wrong")
	}
	if Int(5).AsFloat() != 5 || Float(2.5).AsFloat() != 2.5 {
		t.Fatal("AsFloat wrong")
	}
	if Int(1).Equal(Float(1)) {
		t.Fatal("kind-insensitive equality")
	}
	if !Str("a").Equal(Str("a")) || Str("a").Equal(Str("b")) {
		t.Fatal("string equality wrong")
	}
	if (Value{}).Valid() {
		t.Fatal("zero value valid")
	}
	for _, v := range []Value{Int(3), Float(2.5), Str("hi")} {
		if v.String() == "" {
			t.Fatal("empty String()")
		}
	}
	if KindInt.String() != "int" || KindFloat.String() != "float" || KindString.String() != "string" {
		t.Fatal("kind strings wrong")
	}
}

func TestPredicateString(t *testing.T) {
	p := Predicate{Attr: "price", Op: OpBetween, Value: Float(1), Hi: Float(2)}
	if p.String() == "" {
		t.Fatal("empty predicate string")
	}
	spec := SubscriptionSpec{Predicates: []Predicate{
		{Attr: "symbol", Op: OpEq, Value: Str("HAL")},
		{Attr: "price", Op: OpLt, Value: Float(50)},
	}}
	if spec.String() == "" {
		t.Fatal("empty spec string")
	}
	for _, op := range []Op{OpEq, OpLt, OpLe, OpGt, OpGe, OpBetween, Op(99)} {
		if op.String() == "" {
			t.Fatal("empty op string")
		}
	}
}

func TestConstraintString(t *testing.T) {
	schema := NewSchema()
	sub := mustNormalize(t, schema, SubscriptionSpec{Predicates: []Predicate{
		{Attr: "symbol", Op: OpEq, Value: Str("HAL")},
		{Attr: "price", Op: OpBetween, Value: Float(10), Hi: Float(50)},
		{Attr: "volume", Op: OpGt, Value: Float(100)},
		{Attr: "name", Op: OpPrefix, Value: Str("HA")},
	}})
	if s := sub.String(); s == "" || !strings.Contains(s, "HAL") {
		t.Fatalf("Subscription.String() = %q", s)
	}
	for _, c := range sub.Constraints {
		if c.String() == "" {
			t.Fatal("empty constraint string")
		}
	}
}
