package pubsub

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Constraint is the normalised per-attribute form of one or more
// predicates: either a string equality or a numeric interval with
// optional open/closed bounds. Subscriptions normalise to a sorted
// slice of constraints, one per attribute — the representation both
// the covering test and the matcher operate on.
type Constraint struct {
	ID AttrID
	// Str marks a string-domain constraint; EqS holds the value. With
	// Prefix set the constraint is a prefix match, otherwise equality.
	Str    bool
	Prefix bool
	EqS    string
	// Numeric interval. HasLo/HasHi mark bound presence; LoIncl/HiIncl
	// mark closedness.
	HasLo, HasHi   bool
	LoIncl, HiIncl bool
	Lo, Hi         float64
}

// Subscription is the engine-internal normalised subscription.
type Subscription struct {
	// Constraints are sorted by attribute ID and hold at most one entry
	// per attribute.
	Constraints []Constraint
}

// Normalize interns attribute names and folds the spec's predicates
// into per-attribute constraints, intersecting ranges. It rejects
// empty and unsatisfiable specs.
func Normalize(schema *Schema, spec SubscriptionSpec) (*Subscription, error) {
	if len(spec.Predicates) == 0 {
		return nil, ErrEmptySubscription
	}
	byID := make(map[AttrID]*Constraint, len(spec.Predicates))
	for _, p := range spec.Predicates {
		if err := p.validate(); err != nil {
			return nil, err
		}
		id, err := schema.Intern(p.Attr)
		if err != nil {
			return nil, err
		}
		next, err := predicateConstraint(id, p)
		if err != nil {
			return nil, err
		}
		cur, ok := byID[id]
		if !ok {
			byID[id] = &next
			continue
		}
		merged, err := intersect(*cur, next)
		if err != nil {
			return nil, fmt.Errorf("%w: conflicting predicates on %q", err, p.Attr)
		}
		byID[id] = &merged
	}
	sub := &Subscription{Constraints: make([]Constraint, 0, len(byID))}
	for _, c := range byID {
		sub.Constraints = append(sub.Constraints, *c)
	}
	sort.Slice(sub.Constraints, func(i, j int) bool {
		return sub.Constraints[i].ID < sub.Constraints[j].ID
	})
	return sub, nil
}

func predicateConstraint(id AttrID, p Predicate) (Constraint, error) {
	c := Constraint{ID: id}
	switch p.Op {
	case OpEq:
		if p.Value.Kind == KindString {
			c.Str = true
			c.EqS = p.Value.S
			return c, nil
		}
		v := p.Value.AsFloat()
		c.HasLo, c.HasHi, c.LoIncl, c.HiIncl = true, true, true, true
		c.Lo, c.Hi = v, v
		return c, nil
	case OpLt:
		c.HasHi, c.Hi = true, p.Value.AsFloat()
		return c, nil
	case OpLe:
		c.HasHi, c.HiIncl, c.Hi = true, true, p.Value.AsFloat()
		return c, nil
	case OpGt:
		c.HasLo, c.Lo = true, p.Value.AsFloat()
		return c, nil
	case OpGe:
		c.HasLo, c.LoIncl, c.Lo = true, true, p.Value.AsFloat()
		return c, nil
	case OpBetween:
		lo, hi := p.Value.AsFloat(), p.Hi.AsFloat()
		if lo > hi {
			return c, fmt.Errorf("%w: between bounds inverted", ErrUnsatisfiable)
		}
		c.HasLo, c.HasHi, c.LoIncl, c.HiIncl = true, true, true, true
		c.Lo, c.Hi = lo, hi
		return c, nil
	case OpPrefix:
		c.Str = true
		c.Prefix = true
		c.EqS = p.Value.S
		return c, nil
	default:
		return c, fmt.Errorf("pubsub: unknown operator %d", p.Op)
	}
}

// intersect combines two constraints on the same attribute.
func intersect(a, b Constraint) (Constraint, error) {
	if a.Str != b.Str {
		return a, ErrUnsatisfiable
	}
	if a.Str {
		return intersectString(a, b)
	}
	out := a
	if b.HasLo && (!out.HasLo || b.Lo > out.Lo || (b.Lo == out.Lo && !b.LoIncl)) {
		out.HasLo, out.Lo, out.LoIncl = true, b.Lo, b.LoIncl
	}
	if b.HasHi && (!out.HasHi || b.Hi < out.Hi || (b.Hi == out.Hi && !b.HiIncl)) {
		out.HasHi, out.Hi, out.HiIncl = true, b.Hi, b.HiIncl
	}
	if out.Empty() {
		return out, ErrUnsatisfiable
	}
	return out, nil
}

// intersectString folds two string-domain constraints.
func intersectString(a, b Constraint) (Constraint, error) {
	switch {
	case !a.Prefix && !b.Prefix: // eq ∧ eq
		if a.EqS != b.EqS {
			return a, ErrUnsatisfiable
		}
		return a, nil
	case a.Prefix && b.Prefix: // prefix ∧ prefix: the longer wins
		if strings.HasPrefix(a.EqS, b.EqS) {
			return a, nil
		}
		if strings.HasPrefix(b.EqS, a.EqS) {
			return b, nil
		}
		return a, ErrUnsatisfiable
	case a.Prefix: // prefix ∧ eq
		if !strings.HasPrefix(b.EqS, a.EqS) {
			return a, ErrUnsatisfiable
		}
		return b, nil
	default: // eq ∧ prefix
		if !strings.HasPrefix(a.EqS, b.EqS) {
			return a, ErrUnsatisfiable
		}
		return a, nil
	}
}

// Empty reports whether a numeric constraint admits no value.
func (c Constraint) Empty() bool {
	if c.Str {
		return false
	}
	if !c.HasLo || !c.HasHi {
		return false
	}
	if c.Lo > c.Hi {
		return true
	}
	return c.Lo == c.Hi && !(c.LoIncl && c.HiIncl)
}

// SatisfiedBy reports whether value v satisfies the constraint.
func (c Constraint) SatisfiedBy(v Value) bool {
	if c.Str {
		if v.Kind != KindString {
			return false
		}
		if c.Prefix {
			return strings.HasPrefix(v.S, c.EqS)
		}
		return v.S == c.EqS
	}
	if !v.Numeric() {
		return false
	}
	f := v.AsFloat()
	if c.HasLo {
		if c.LoIncl {
			if f < c.Lo {
				return false
			}
		} else if f <= c.Lo {
			return false
		}
	}
	if c.HasHi {
		if c.HiIncl {
			if f > c.Hi {
				return false
			}
		} else if f >= c.Hi {
			return false
		}
	}
	return true
}

// Covers reports whether c admits every value that d admits (c ⊒ d for
// single attributes): d's interval (or string set) is included in c's.
func (c Constraint) Covers(d Constraint) bool {
	if c.Str || d.Str {
		if !c.Str || !d.Str {
			return false
		}
		switch {
		case c.Prefix && d.Prefix:
			return strings.HasPrefix(d.EqS, c.EqS)
		case c.Prefix: // prefix covers any equality extending it
			return strings.HasPrefix(d.EqS, c.EqS)
		case d.Prefix: // an equality never covers an (infinite) prefix set
			return false
		default:
			return c.EqS == d.EqS
		}
	}
	if c.HasLo {
		if !d.HasLo {
			return false
		}
		if d.Lo < c.Lo {
			return false
		}
		if d.Lo == c.Lo && !c.LoIncl && d.LoIncl {
			return false
		}
	}
	if c.HasHi {
		if !d.HasHi {
			return false
		}
		if d.Hi > c.Hi {
			return false
		}
		if d.Hi == c.Hi && !c.HiIncl && d.HiIncl {
			return false
		}
	}
	return true
}

// Equal reports structural equality of constraints.
func (c Constraint) Equal(d Constraint) bool {
	if c.ID != d.ID || c.Str != d.Str {
		return false
	}
	if c.Str {
		return c.Prefix == d.Prefix && c.EqS == d.EqS
	}
	if c.HasLo != d.HasLo || c.HasHi != d.HasHi {
		return false
	}
	if c.HasLo && (c.Lo != d.Lo || c.LoIncl != d.LoIncl) {
		return false
	}
	if c.HasHi && (c.Hi != d.Hi || c.HiIncl != d.HiIncl) {
		return false
	}
	return true
}

// IsEquality reports whether the constraint pins the attribute to a
// single value (string equality or a degenerate closed interval).
// Table 1 classifies subscriptions by their number of equality
// predicates, and the engine shards by equality values; prefix
// constraints are not equalities.
func (c Constraint) IsEquality() bool {
	if c.Str {
		return !c.Prefix
	}
	return c.HasLo && c.HasHi && c.Lo == c.Hi && c.LoIncl && c.HiIncl
}

// Event is a publication header after attribute interning: attribute
// values sorted by ID.
type Event struct {
	Attrs []EventAttr
}

// EventAttr is one attribute of an event.
type EventAttr struct {
	ID    AttrID
	Value Value
}

// Get returns the value of attribute id.
func (e *Event) Get(id AttrID) (Value, bool) {
	// Events carry ≤ a few dozen attributes; binary search on the
	// sorted slice.
	lo, hi := 0, len(e.Attrs)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case e.Attrs[mid].ID < id:
			lo = mid + 1
		case e.Attrs[mid].ID > id:
			hi = mid
		default:
			return e.Attrs[mid].Value, true
		}
	}
	return Value{}, false
}

// Matches reports whether the event satisfies every constraint of the
// subscription. Both sides are sorted by attribute ID, so this is a
// merge join.
func (s *Subscription) Matches(e *Event) bool {
	i := 0
	for _, c := range s.Constraints {
		for i < len(e.Attrs) && e.Attrs[i].ID < c.ID {
			i++
		}
		if i >= len(e.Attrs) || e.Attrs[i].ID != c.ID {
			return false
		}
		if !c.SatisfiedBy(e.Attrs[i].Value) {
			return false
		}
	}
	return true
}

// Covers reports the containment relation of §3.2: s ⊒ t iff every
// event matching t also matches s. Structurally: every constraint of s
// appears in t (same attribute) at least as tight.
func (s *Subscription) Covers(t *Subscription) bool {
	j := 0
	for _, cs := range s.Constraints {
		for j < len(t.Constraints) && t.Constraints[j].ID < cs.ID {
			j++
		}
		if j >= len(t.Constraints) || t.Constraints[j].ID != cs.ID {
			return false
		}
		if !cs.Covers(t.Constraints[j]) {
			return false
		}
	}
	return true
}

// Equal reports whether two subscriptions have identical constraints.
func (s *Subscription) Equal(t *Subscription) bool {
	if len(s.Constraints) != len(t.Constraints) {
		return false
	}
	for i := range s.Constraints {
		if !s.Constraints[i].Equal(t.Constraints[i]) {
			return false
		}
	}
	return true
}

// EqualityAttr returns the ID of the first equality constraint, used by
// the engine to shard its containment forest, and ok=false when the
// subscription has no equality constraint.
func (s *Subscription) EqualityAttr() (AttrID, Value, bool) {
	for _, c := range s.Constraints {
		if !c.IsEquality() {
			continue
		}
		if c.Str {
			return c.ID, Str(c.EqS), true
		}
		return c.ID, Float(c.Lo), true
	}
	return 0, Value{}, false
}

// NumEqualities counts equality constraints (Table 1 classification).
func (s *Subscription) NumEqualities() int {
	n := 0
	for _, c := range s.Constraints {
		if c.IsEquality() {
			n++
		}
	}
	return n
}

// NewEvent interns and sorts the given named values into an Event.
func NewEvent(schema *Schema, attrs map[string]Value) (*Event, error) {
	e := &Event{Attrs: make([]EventAttr, 0, len(attrs))}
	for name, v := range attrs {
		if !v.Valid() {
			return nil, fmt.Errorf("pubsub: invalid value for attribute %q", name)
		}
		id, err := schema.Intern(name)
		if err != nil {
			return nil, err
		}
		e.Attrs = append(e.Attrs, EventAttr{ID: id, Value: v})
	}
	sort.Slice(e.Attrs, func(i, j int) bool { return e.Attrs[i].ID < e.Attrs[j].ID })
	return e, nil
}

// Unbounded returns ±Inf helpers for workload construction.
func Unbounded() (float64, float64) { return math.Inf(-1), math.Inf(1) }

// String renders a constraint for diagnostics.
func (c Constraint) String() string {
	if c.Str {
		if c.Prefix {
			return fmt.Sprintf("#%d prefix %q", c.ID, c.EqS)
		}
		return fmt.Sprintf("#%d = %q", c.ID, c.EqS)
	}
	lo, hi := "(-inf", "+inf)"
	if c.HasLo {
		br := "("
		if c.LoIncl {
			br = "["
		}
		lo = fmt.Sprintf("%s%g", br, c.Lo)
	}
	if c.HasHi {
		br := ")"
		if c.HiIncl {
			br = "]"
		}
		hi = fmt.Sprintf("%g%s", c.Hi, br)
	}
	return fmt.Sprintf("#%d in %s, %s", c.ID, lo, hi)
}

// String renders the normalised subscription for diagnostics.
func (s *Subscription) String() string {
	parts := make([]string, len(s.Constraints))
	for i, c := range s.Constraints {
		parts[i] = c.String()
	}
	return strings.Join(parts, " ∧ ")
}
