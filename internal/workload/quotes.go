package workload

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"scbr/internal/pubsub"
)

// Quote corpus defaults matching the paper's crawl: ≈250 000 entries
// over 5 years with 8–11 attributes each.
const (
	DefaultNumSymbols   = 500
	DefaultQuotesPerSym = 500
	tradingDaysPerYear  = 252
	corpusYears         = 5
)

// Entry is one quote: the symbol plus its numeric attributes, in a
// stable attribute order (symbol first).
type Entry struct {
	Attrs []pubsub.NamedValue
}

// Symbol returns the entry's ticker symbol.
func (e Entry) Symbol() string { return e.Attrs[0].Value.S }

// QuoteSet is the synthetic stand-in for the paper's Yahoo! Finance
// crawl.
type QuoteSet struct {
	Entries  []Entry
	Symbols  []string
	bySymbol map[string][]int
}

// baseQuoteAttrs is every attribute name a corpus entry can carry, in
// the stable attribute order.
var baseQuoteAttrs = []string{"symbol", "open", "high", "low", "close", "volume", "day", "month", "year", "adjclose", "change"}

// QuoteAttrs returns the full attribute universe the generator can
// emit at the given attribute factor: the base quote attributes for
// factor ≤ 1, and their "_<component>" suffixed forms (as the merged
// multi-entry events and subscriptions name them) otherwise. Fixed-
// universe matching schemes (ASPE) and the experiment harness build
// their attribute spaces from this.
func QuoteAttrs(factor int) []string {
	if factor <= 1 {
		return append([]string(nil), baseQuoteAttrs...)
	}
	out := make([]string, 0, factor*len(baseQuoteAttrs))
	for i := 1; i <= factor; i++ {
		for _, b := range baseQuoteAttrs {
			out = append(out, fmt.Sprintf("%s_%d", b, i))
		}
	}
	return out
}

// NewQuoteSet generates a deterministic corpus: numSymbols tickers
// with log-uniform price levels between $2 and $800, each followed
// through perSymbol daily random-walk quotes spread over five years.
// Per entry, 8 attributes are always present (symbol, open, high, low,
// close, volume, day, month) and up to 3 more (year, adjclose, change)
// appear randomly, giving the paper's 8–11 attributes.
func NewQuoteSet(seed int64, numSymbols, perSymbol int) (*QuoteSet, error) {
	if numSymbols <= 0 || perSymbol <= 0 {
		return nil, fmt.Errorf("workload: invalid corpus size %d×%d", numSymbols, perSymbol)
	}
	rng := rand.New(rand.NewSource(seed))
	qs := &QuoteSet{
		Entries:  make([]Entry, 0, numSymbols*perSymbol),
		Symbols:  make([]string, 0, numSymbols),
		bySymbol: make(map[string][]int, numSymbols),
	}
	seen := make(map[string]bool, numSymbols)
	for len(qs.Symbols) < numSymbols {
		sym := randomSymbol(rng)
		if seen[sym] {
			continue
		}
		seen[sym] = true
		qs.Symbols = append(qs.Symbols, sym)
	}
	for _, sym := range qs.Symbols {
		// Price level: log-uniform in [2, 800].
		level := 2 * math.Exp(rng.Float64()*math.Log(400))
		volumeLevel := float64(10_000 * (1 + rng.Intn(1000)))
		price := level
		day := rng.Intn(tradingDaysPerYear * corpusYears)
		for i := 0; i < perSymbol; i++ {
			// Geometric daily step, ±~2%.
			price *= math.Exp(rng.NormFloat64() * 0.02)
			if price < 0.01 {
				price = 0.01
			}
			open := price * (1 + rng.NormFloat64()*0.005)
			high := math.Max(open, price) * (1 + rng.Float64()*0.01)
			low := math.Min(open, price) * (1 - rng.Float64()*0.01)
			volume := volumeLevel * math.Exp(rng.NormFloat64()*0.5)
			day += 1 + rng.Intn(4)
			dayOfMonth := 1 + day%28
			month := 1 + (day/21)%12
			year := 2011 + day/tradingDaysPerYear

			attrs := []pubsub.NamedValue{
				{Name: "symbol", Value: pubsub.Str(sym)},
				{Name: "open", Value: pubsub.Float(round2(open))},
				{Name: "high", Value: pubsub.Float(round2(high))},
				{Name: "low", Value: pubsub.Float(round2(low))},
				{Name: "close", Value: pubsub.Float(round2(price))},
				{Name: "volume", Value: pubsub.Int(int64(volume))},
				{Name: "day", Value: pubsub.Int(int64(dayOfMonth))},
				{Name: "month", Value: pubsub.Int(int64(month))},
			}
			if rng.Intn(2) == 0 {
				attrs = append(attrs, pubsub.NamedValue{Name: "year", Value: pubsub.Int(int64(year))})
			}
			if rng.Intn(2) == 0 {
				attrs = append(attrs, pubsub.NamedValue{Name: "adjclose", Value: pubsub.Float(round2(price * 0.98))})
			}
			if rng.Intn(2) == 0 {
				attrs = append(attrs, pubsub.NamedValue{Name: "change", Value: pubsub.Float(round2((price - open) / open * 100))})
			}
			qs.bySymbol[sym] = append(qs.bySymbol[sym], len(qs.Entries))
			qs.Entries = append(qs.Entries, Entry{Attrs: attrs})
		}
	}
	return qs, nil
}

// EntriesOf returns the indices of all entries for a symbol.
func (qs *QuoteSet) EntriesOf(symbol string) []int { return qs.bySymbol[symbol] }

func randomSymbol(rng *rand.Rand) string {
	n := 1 + rng.Intn(4)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(byte('A' + rng.Intn(26)))
	}
	return b.String()
}

func round2(v float64) float64 { return math.Round(v*100) / 100 }

// MergeEntries combines k entries into one wide entry with suffixed
// attribute names — the paper's ×2/×4 attribute synthesis ("merging
// data from multiple quotes").
func MergeEntries(entries []Entry) Entry {
	if len(entries) == 1 {
		return entries[0]
	}
	var out Entry
	total := 0
	for _, e := range entries {
		total += len(e.Attrs)
	}
	out.Attrs = make([]pubsub.NamedValue, 0, total)
	for i, e := range entries {
		suffix := fmt.Sprintf("_%d", i+1)
		for _, a := range e.Attrs {
			out.Attrs = append(out.Attrs, pubsub.NamedValue{
				Name:  a.Name + suffix,
				Value: a.Value,
			})
		}
	}
	return out
}
