// Package workload generates the nine evaluation datasets of Table 1.
//
// The paper built its workloads from ≈250 000 stock quotes collected
// from Yahoo! Finance over five years (8–11 attributes per quote) and
// synthesised subscription sets with controlled proportions of
// equality predicates, 2× / 4× attribute counts (by merging quotes),
// and uniform or Zipf (s = 1) value distributions. The crawl itself is
// unavailable, so this package generates a synthetic quote corpus with
// the same shape — per-symbol price levels spanning cents to hundreds
// of dollars, daily random walks over five years — and derives the
// subscription datasets exactly as Table 1 specifies. DESIGN.md §2
// records this substitution.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Zipf samples ranks 0..n-1 with probability ∝ 1/(rank+1)^s. Unlike
// math/rand's Zipf it supports s = 1 exactly, the exponent the paper
// uses, via an explicit CDF and binary search.
type Zipf struct {
	cdf []float64
	rng *rand.Rand
}

// NewZipf builds a sampler over n ranks with exponent s > 0.
func NewZipf(rng *rand.Rand, s float64, n int) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: zipf over %d ranks", n)
	}
	if s <= 0 {
		return nil, fmt.Errorf("workload: zipf exponent %f must be positive", s)
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1.0 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, rng: rng}, nil
}

// Draw returns the next rank.
func (z *Zipf) Draw() int {
	u := z.rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}
