package workload

import (
	"math"
	"math/rand"
	"testing"

	"scbr/internal/pubsub"
)

func smallCorpus(t *testing.T) *QuoteSet {
	t.Helper()
	qs, err := NewQuoteSet(1, 50, 100)
	if err != nil {
		t.Fatal(err)
	}
	return qs
}

func TestQuoteSetShape(t *testing.T) {
	qs := smallCorpus(t)
	if len(qs.Entries) != 5000 {
		t.Fatalf("entries = %d, want 5000", len(qs.Entries))
	}
	if len(qs.Symbols) != 50 {
		t.Fatalf("symbols = %d, want 50", len(qs.Symbols))
	}
	for _, e := range qs.Entries {
		if n := len(e.Attrs); n < 8 || n > 11 {
			t.Fatalf("entry has %d attributes, want 8–11", n)
		}
		if e.Attrs[0].Name != "symbol" || e.Attrs[0].Value.Kind != pubsub.KindString {
			t.Fatalf("first attribute must be the symbol, got %+v", e.Attrs[0])
		}
		var hi, lo, cl float64
		for _, a := range e.Attrs {
			switch a.Name {
			case "high":
				hi = a.Value.AsFloat()
			case "low":
				lo = a.Value.AsFloat()
			case "close":
				cl = a.Value.AsFloat()
			}
		}
		if hi < lo {
			t.Fatalf("high %f < low %f", hi, lo)
		}
		if cl <= 0 {
			t.Fatalf("non-positive close %f", cl)
		}
	}
	// Per-symbol index is complete.
	total := 0
	for _, sym := range qs.Symbols {
		total += len(qs.EntriesOf(sym))
	}
	if total != len(qs.Entries) {
		t.Fatalf("per-symbol index covers %d of %d entries", total, len(qs.Entries))
	}
}

func TestQuoteSetDeterministic(t *testing.T) {
	a, err := NewQuoteSet(7, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewQuoteSet(7, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Entries) != len(b.Entries) {
		t.Fatal("nondeterministic corpus size")
	}
	for i := range a.Entries {
		if len(a.Entries[i].Attrs) != len(b.Entries[i].Attrs) {
			t.Fatalf("entry %d differs", i)
		}
		for j := range a.Entries[i].Attrs {
			x, y := a.Entries[i].Attrs[j], b.Entries[i].Attrs[j]
			if x.Name != y.Name || !x.Value.Equal(y.Value) {
				t.Fatalf("entry %d attr %d differs: %+v vs %+v", i, j, x, y)
			}
		}
	}
}

func TestQuoteSetValidation(t *testing.T) {
	if _, err := NewQuoteSet(1, 0, 10); err == nil {
		t.Fatal("zero symbols accepted")
	}
	if _, err := NewQuoteSet(1, 10, 0); err == nil {
		t.Fatal("zero quotes accepted")
	}
}

func TestZipfSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z, err := NewZipf(rng, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 100)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[z.Draw()]++
	}
	// With s=1 over 100 ranks, P(rank 0) = 1/H(100) ≈ 0.1928.
	h := 0.0
	for i := 1; i <= 100; i++ {
		h += 1.0 / float64(i)
	}
	want := 1 / h
	got := float64(counts[0]) / draws
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("P(rank 0) = %f, want ≈ %f", got, want)
	}
	// Monotone-ish decay: rank 0 ≫ rank 50.
	if counts[0] < counts[50]*5 {
		t.Fatalf("insufficient skew: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
}

func TestZipfValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewZipf(rng, 1, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := NewZipf(rng, 0, 10); err == nil {
		t.Fatal("s=0 accepted")
	}
}

func TestTable1Definitions(t *testing.T) {
	specs := Table1()
	if len(specs) != 9 {
		t.Fatalf("Table1 has %d workloads, want 9", len(specs))
	}
	wantNames := []string{
		"e100a1", "e80a1", "e80a2", "e80a4", "extsub2", "extsub4",
		"e80a1z100", "e80a1zz100", "e100a1zz100",
	}
	for i, s := range specs {
		if s.Name != wantNames[i] {
			t.Fatalf("workload %d = %s, want %s", i, s.Name, wantNames[i])
		}
		sum := 0.0
		for _, c := range s.EqMix {
			sum += c.Frac
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("%s: mix sums to %f", s.Name, sum)
		}
	}
	if _, err := SpecByName("e80a4"); err != nil {
		t.Fatal(err)
	}
	if _, err := SpecByName("nope"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestGeneratorEqualityMix(t *testing.T) {
	qs := smallCorpus(t)
	for _, name := range []string{"e100a1", "e80a1", "extsub2"} {
		spec, err := SpecByName(name)
		if err != nil {
			t.Fatal(err)
		}
		g, err := NewGenerator(spec, qs, 42)
		if err != nil {
			t.Fatal(err)
		}
		subs := g.Subscriptions(5000)
		mix := AnalyzeSpecs(subs)
		for _, c := range spec.EqMix {
			got := mix.EqFrac[c.NumEq]
			if math.Abs(got-c.Frac) > 0.03 {
				t.Errorf("%s: %d-equality fraction = %f, want %f±0.03", name, c.NumEq, got, c.Frac)
			}
		}
	}
}

func TestGeneratorAttributeFactor(t *testing.T) {
	qs := smallCorpus(t)
	for _, tc := range []struct {
		name     string
		minAttrs int
		maxAttrs int
	}{
		{"e80a1", 8, 11},
		{"e80a2", 16, 22},
		{"e80a4", 32, 44},
	} {
		spec, err := SpecByName(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		g, err := NewGenerator(spec, qs, 1)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			pub := g.Publication()
			if n := len(pub.Attrs); n < tc.minAttrs || n > tc.maxAttrs {
				t.Fatalf("%s: publication with %d attributes, want %d–%d", tc.name, n, tc.minAttrs, tc.maxAttrs)
			}
		}
	}
}

func TestGeneratorSubscriptionsNormalise(t *testing.T) {
	qs := smallCorpus(t)
	schema := pubsub.NewSchema()
	for _, spec := range Table1() {
		g, err := NewGenerator(spec, qs, 9)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 300; i++ {
			sub := g.Subscription()
			if len(sub.Predicates) == 0 {
				t.Fatalf("%s: empty subscription", spec.Name)
			}
			if _, err := pubsub.Normalize(schema, sub); err != nil {
				t.Fatalf("%s: generated unsatisfiable subscription %v: %v", spec.Name, sub, err)
			}
		}
	}
}

func TestGeneratorZipfSymbolSkew(t *testing.T) {
	qs := smallCorpus(t)
	specU, _ := SpecByName("e80a1")
	specZ, _ := SpecByName("e80a1z100")
	count := func(spec Spec) map[string]int {
		g, err := NewGenerator(spec, qs, 5)
		if err != nil {
			t.Fatal(err)
		}
		c := make(map[string]int)
		for i := 0; i < 4000; i++ {
			sub := g.Subscription()
			for _, p := range sub.Predicates {
				if p.Attr == "symbol" && p.Op == pubsub.OpEq {
					c[p.Value.S]++
				}
			}
		}
		return c
	}
	u, z := count(specU), count(specZ)
	maxU, maxZ := 0, 0
	for _, n := range u {
		if n > maxU {
			maxU = n
		}
	}
	for _, n := range z {
		if n > maxZ {
			maxZ = n
		}
	}
	// Zipf concentrates mass on the top symbol far more than uniform.
	if maxZ < maxU*3 {
		t.Fatalf("zipf top symbol %d not ≫ uniform top %d", maxZ, maxU)
	}
}

func TestGeneratorMatchability(t *testing.T) {
	// Generated subscriptions must actually match generated
	// publications at a sane rate — they window real quote values.
	qs := smallCorpus(t)
	schema := pubsub.NewSchema()
	spec, _ := SpecByName("e80a1")
	g, err := NewGenerator(spec, qs, 11)
	if err != nil {
		t.Fatal(err)
	}
	subs := make([]*pubsub.Subscription, 0, 2000)
	for _, s := range g.Subscriptions(2000) {
		n, err := pubsub.Normalize(schema, s)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, n)
	}
	matches := 0
	for _, p := range g.Publications(200) {
		ev, err := p.Intern(schema)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range subs {
			if s.Matches(ev) {
				matches++
			}
		}
	}
	if matches == 0 {
		t.Fatal("no generated publication matched any subscription; workload is vacuous")
	}
}

func TestMergeEntries(t *testing.T) {
	qs := smallCorpus(t)
	merged := MergeEntries([]Entry{qs.Entries[0], qs.Entries[1]})
	if len(merged.Attrs) != len(qs.Entries[0].Attrs)+len(qs.Entries[1].Attrs) {
		t.Fatal("merge lost attributes")
	}
	if merged.Attrs[0].Name != "symbol_1" {
		t.Fatalf("first merged attr = %s, want symbol_1", merged.Attrs[0].Name)
	}
	single := MergeEntries([]Entry{qs.Entries[0]})
	if single.Attrs[0].Name != "symbol" {
		t.Fatal("factor-1 merge must keep original names")
	}
}

func TestGeneratorValidation(t *testing.T) {
	qs := smallCorpus(t)
	if _, err := NewGenerator(Spec{Name: "x", AttrFactor: 0, EqMix: []EqClass{{0, 1}}}, qs, 1); err == nil {
		t.Fatal("factor 0 accepted")
	}
	if _, err := NewGenerator(Spec{Name: "x", AttrFactor: 1}, qs, 1); err == nil {
		t.Fatal("empty mix accepted")
	}
	if _, err := NewGenerator(Spec{Name: "x", AttrFactor: 1, EqMix: []EqClass{{0, 0.5}}}, qs, 1); err == nil {
		t.Fatal("non-normalised mix accepted")
	}
	if _, err := NewGenerator(Spec{Name: "x", AttrFactor: 1, EqMix: []EqClass{{0, 1}}, Dist: Distribution(99)}, qs, 1); err == nil {
		t.Fatal("unknown distribution accepted")
	}
}

func TestAnalyzeSpecsEmpty(t *testing.T) {
	m := AnalyzeSpecs(nil)
	if len(m.EqFrac) != 0 || m.AvgPreds != 0 {
		t.Fatalf("empty analysis = %+v", m)
	}
}

func TestDistributionString(t *testing.T) {
	for _, d := range []Distribution{Uniform, ZipfSymbol, ZipfAll, Distribution(9)} {
		if d.String() == "" {
			t.Fatal("empty distribution string")
		}
	}
}
