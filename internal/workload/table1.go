package workload

import (
	"fmt"
	"math"
	"math/rand"

	"scbr/internal/pubsub"
)

// Distribution selects how subscription values are drawn (last column
// of Table 1).
type Distribution int

// Value distributions.
const (
	Uniform Distribution = iota + 1
	// ZipfSymbol draws the subscription's quote with a Zipf(s=1) skew
	// over ticker symbols ("Zipf on symbol").
	ZipfSymbol
	// ZipfAll draws the subscription's quote with a Zipf(s=1) skew over
	// all corpus entries ("Zipf on all attributes").
	ZipfAll
)

func (d Distribution) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case ZipfSymbol:
		return "zipf(symbol)"
	case ZipfAll:
		return "zipf(all)"
	default:
		return "dist?"
	}
}

// EqClass is one row of an equality-predicate mix: Frac of the
// subscriptions carry NumEq equality predicates.
type EqClass struct {
	NumEq int
	Frac  float64
}

// Spec describes one Table 1 workload.
type Spec struct {
	Name string
	// EqMix is the proportion of equality predicates.
	EqMix []EqClass
	// AttrFactor multiplies the publication attribute count by merging
	// this many quotes (1, 2 or 4).
	AttrFactor int
	// Dist is the subscription value distribution.
	Dist Distribution
}

// Table1 returns the paper's nine workload specifications.
func Table1() []Spec {
	mix80 := []EqClass{{NumEq: 0, Frac: 0.20}, {NumEq: 1, Frac: 0.80}}
	mixExt := []EqClass{
		{NumEq: 0, Frac: 0.15},
		{NumEq: 1, Frac: 0.60},
		{NumEq: 2, Frac: 0.15},
		{NumEq: 3, Frac: 0.10},
	}
	mix100 := []EqClass{{NumEq: 1, Frac: 1.0}}
	return []Spec{
		{Name: "e100a1", EqMix: mix100, AttrFactor: 1, Dist: Uniform},
		{Name: "e80a1", EqMix: mix80, AttrFactor: 1, Dist: Uniform},
		{Name: "e80a2", EqMix: mix80, AttrFactor: 2, Dist: Uniform},
		{Name: "e80a4", EqMix: mix80, AttrFactor: 4, Dist: Uniform},
		{Name: "extsub2", EqMix: mixExt, AttrFactor: 2, Dist: Uniform},
		{Name: "extsub4", EqMix: mixExt, AttrFactor: 4, Dist: Uniform},
		{Name: "e80a1z100", EqMix: mix80, AttrFactor: 1, Dist: ZipfSymbol},
		{Name: "e80a1zz100", EqMix: mix80, AttrFactor: 1, Dist: ZipfAll},
		{Name: "e100a1zz100", EqMix: mix100, AttrFactor: 1, Dist: ZipfAll},
	}
}

// SpecByName looks a workload up by its Table 1 name.
func SpecByName(name string) (Spec, error) {
	for _, s := range Table1() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown workload %q", name)
}

// Generator synthesises subscriptions and publications for one
// workload over a quote corpus. It is deterministic for a given
// (corpus, spec, seed) triple and not safe for concurrent use.
type Generator struct {
	spec      Spec
	qs        *QuoteSet
	rng       *rand.Rand
	zipfSym   *Zipf
	zipfEntry *Zipf
	mixCDF    []float64
	scratch   []Entry
}

// NewGenerator builds a generator for the given workload.
func NewGenerator(spec Spec, qs *QuoteSet, seed int64) (*Generator, error) {
	if spec.AttrFactor < 1 {
		return nil, fmt.Errorf("workload %s: attribute factor %d", spec.Name, spec.AttrFactor)
	}
	if len(spec.EqMix) == 0 {
		return nil, fmt.Errorf("workload %s: empty equality mix", spec.Name)
	}
	g := &Generator{spec: spec, qs: qs, rng: rand.New(rand.NewSource(seed))}
	sum := 0.0
	for _, c := range spec.EqMix {
		sum += c.Frac
		g.mixCDF = append(g.mixCDF, sum)
	}
	if sum < 0.999 || sum > 1.001 {
		return nil, fmt.Errorf("workload %s: equality mix sums to %f", spec.Name, sum)
	}
	var err error
	switch spec.Dist {
	case Uniform:
	case ZipfSymbol:
		if g.zipfSym, err = NewZipf(g.rng, 1, len(qs.Symbols)); err != nil {
			return nil, err
		}
	case ZipfAll:
		if g.zipfEntry, err = NewZipf(g.rng, 1, len(qs.Entries)); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("workload %s: unknown distribution %d", spec.Name, spec.Dist)
	}
	return g, nil
}

// Spec returns the generator's workload spec.
func (g *Generator) Spec() Spec { return g.spec }

// drawEntry picks one quote according to the workload distribution.
func (g *Generator) drawEntry() Entry {
	switch g.spec.Dist {
	case ZipfSymbol:
		sym := g.qs.Symbols[g.zipfSym.Draw()]
		idxs := g.qs.EntriesOf(sym)
		return g.qs.Entries[idxs[g.rng.Intn(len(idxs))]]
	case ZipfAll:
		return g.qs.Entries[g.zipfEntry.Draw()]
	default:
		return g.qs.Entries[g.rng.Intn(len(g.qs.Entries))]
	}
}

// mergedEntry draws AttrFactor quotes and merges them into one wide
// entry (suffix-free for factor 1).
func (g *Generator) mergedEntry() Entry {
	g.scratch = g.scratch[:0]
	for i := 0; i < g.spec.AttrFactor; i++ {
		g.scratch = append(g.scratch, g.drawEntry())
	}
	return MergeEntries(g.scratch)
}

// numEqualities draws from the workload's equality mix.
func (g *Generator) numEqualities() int {
	u := g.rng.Float64()
	for i, c := range g.mixCDF {
		if u <= c {
			return g.spec.EqMix[i].NumEq
		}
	}
	return g.spec.EqMix[len(g.spec.EqMix)-1].NumEq
}

// Subscription synthesises one subscription: the drawn quote supplies
// the predicate values, equality predicates land on symbol (then
// day/month of further merged components), and 2–4 range predicates
// window the quote's numeric attributes with log-uniform widths
// (1%–100% of the value), which produces the nested intervals that
// containment trees exploit.
func (g *Generator) Subscription() pubsub.SubscriptionSpec {
	entry := g.mergedEntry()
	nEq := g.numEqualities()
	var preds []pubsub.Predicate

	// Equality predicates. The first is always on a symbol attribute
	// (the paper's z100 naming ties the Zipf skew to the symbol);
	// later ones pin calendar attributes of further components.
	eqTargets := []string{"symbol", "day", "month"}
	for i := 0; i < nEq; i++ {
		component := i % g.spec.AttrFactor
		name := eqTargets[min(i, len(eqTargets)-1)]
		if g.spec.AttrFactor > 1 {
			name = fmt.Sprintf("%s_%d", name, component+1)
		}
		if v, ok := findAttr(entry, name); ok {
			preds = append(preds, pubsub.Predicate{Attr: name, Op: pubsub.OpEq, Value: v})
		}
	}

	// Range predicates over distinct numeric attributes.
	numeric := numericAttrs(entry)
	g.rng.Shuffle(len(numeric), func(i, j int) { numeric[i], numeric[j] = numeric[j], numeric[i] })
	nRange := 2 + g.rng.Intn(3)
	if nRange > len(numeric) {
		nRange = len(numeric)
	}
	for _, a := range numeric[:nRange] {
		v := a.Value.AsFloat()
		width := absf(v) * powUniform(g.rng)
		if width == 0 {
			width = 1 + g.rng.Float64()*10
		}
		switch g.rng.Intn(8) {
		case 0:
			preds = append(preds, pubsub.Predicate{Attr: a.Name, Op: pubsub.OpLt, Value: pubsub.Float(v + width)})
		case 1:
			preds = append(preds, pubsub.Predicate{Attr: a.Name, Op: pubsub.OpGt, Value: pubsub.Float(v - width)})
		default:
			preds = append(preds, pubsub.Predicate{
				Attr: a.Name, Op: pubsub.OpBetween,
				Value: pubsub.Float(v - width), Hi: pubsub.Float(v + width),
			})
		}
	}
	return pubsub.SubscriptionSpec{Predicates: preds}
}

// Subscriptions generates n subscription specs.
func (g *Generator) Subscriptions(n int) []pubsub.SubscriptionSpec {
	out := make([]pubsub.SubscriptionSpec, n)
	for i := range out {
		out[i] = g.Subscription()
	}
	return out
}

// Publication draws one publication header: AttrFactor uniformly
// chosen quotes merged to the workload's arity. Publications are
// always drawn uniformly — the skew of Table 1 concerns subscription
// values.
func (g *Generator) Publication() pubsub.EventSpec {
	g.scratch = g.scratch[:0]
	for i := 0; i < g.spec.AttrFactor; i++ {
		g.scratch = append(g.scratch, g.qs.Entries[g.rng.Intn(len(g.qs.Entries))])
	}
	merged := MergeEntries(g.scratch)
	return pubsub.EventSpec{Attrs: merged.Attrs}
}

// Publications generates n publication headers.
func (g *Generator) Publications(n int) []pubsub.EventSpec {
	out := make([]pubsub.EventSpec, n)
	for i := range out {
		out[i] = g.Publication()
	}
	return out
}

// Mix reports the realised equality-predicate proportions and average
// attribute counts of a generated subscription set — used to validate
// the generator against Table 1.
type Mix struct {
	// EqFrac[k] is the fraction of subscriptions with k equality
	// predicates.
	EqFrac map[int]float64
	// AvgPreds is the mean number of predicates per subscription.
	AvgPreds float64
}

// AnalyzeSpecs computes the realised mix of a subscription set.
func AnalyzeSpecs(specs []pubsub.SubscriptionSpec) Mix {
	m := Mix{EqFrac: make(map[int]float64)}
	if len(specs) == 0 {
		return m
	}
	total := 0
	for _, s := range specs {
		eq := 0
		for _, p := range s.Predicates {
			if p.Op == pubsub.OpEq {
				eq++
			}
		}
		m.EqFrac[eq]++
		total += len(s.Predicates)
	}
	for k := range m.EqFrac {
		m.EqFrac[k] /= float64(len(specs))
	}
	m.AvgPreds = float64(total) / float64(len(specs))
	return m
}

func findAttr(e Entry, name string) (pubsub.Value, bool) {
	for _, a := range e.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return pubsub.Value{}, false
}

func numericAttrs(e Entry) []pubsub.NamedValue {
	out := make([]pubsub.NamedValue, 0, len(e.Attrs))
	for _, a := range e.Attrs {
		if a.Value.Numeric() {
			out = append(out, a)
		}
	}
	return out
}

// powUniform draws 10^u with u uniform in [-2, 0): widths from 1% to
// 100% of the attribute value.
func powUniform(rng *rand.Rand) float64 {
	u := rng.Float64()*2 - 2
	return math.Pow(10, u)
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
