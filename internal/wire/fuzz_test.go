package wire

import (
	"bytes"
	"io"
	"testing"
)

// FuzzFrameRoundTrip pins the framing layer under the scheme-tagged
// protocol: any payload within the frame bound must travel through
// WriteFrame/ReadFrame byte-identically, and back-to-back frames must
// not bleed into each other (the handshake sends provision, register,
// and publish frames down one connection).
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add([]byte(`{"type":"provision","scheme":"aspe"}`), []byte(`{"type":"register"}`))
	f.Add([]byte{}, []byte{0})
	f.Add(bytes.Repeat([]byte{0xA5}, 1024), []byte(nil))
	f.Fuzz(func(t *testing.T, first, second []byte) {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, first); err != nil {
			if len(first) <= MaxFrame {
				t.Fatalf("in-bound frame rejected: %v", err)
			}
			return
		}
		if err := WriteFrame(&buf, second); err != nil {
			return
		}
		gotFirst, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("reading first frame: %v", err)
		}
		if !bytes.Equal(gotFirst, first) {
			t.Fatalf("first frame diverged: %d bytes in, %d out", len(first), len(gotFirst))
		}
		gotSecond, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("reading second frame: %v", err)
		}
		if !bytes.Equal(gotSecond, second) {
			t.Fatalf("second frame diverged: %d bytes in, %d out", len(second), len(gotSecond))
		}
		if _, err := ReadFrame(&buf); err != io.EOF {
			t.Fatalf("trailing read = %v, want io.EOF", err)
		}
	})
}
