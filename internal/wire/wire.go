// Package wire provides length-prefixed framing for SCBR's transport.
// The paper uses ZeroMQ with Base64-encoded text messages; this
// package substitutes plain TCP (or any net.Conn, including net.Pipe
// in tests) with 4-byte little-endian length prefixes. Message bodies
// are JSON, whose []byte fields are Base64-encoded — matching the
// paper's on-the-wire text encoding.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MaxFrame bounds a single frame; larger frames indicate corruption or
// abuse.
const MaxFrame = 16 << 20

// ErrFrameTooLarge is returned for frames exceeding MaxFrame.
var ErrFrameTooLarge = errors.New("wire: frame too large")

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload))
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: writing frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("wire: writing frame body: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed frame.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err // io.EOF passes through for clean shutdown
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("wire: reading frame body: %w", err)
	}
	return payload, nil
}
