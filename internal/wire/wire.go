// Package wire provides length-prefixed framing for SCBR's transport.
// The paper uses ZeroMQ with Base64-encoded text messages; this
// package substitutes plain TCP (or any net.Conn, including net.Pipe
// in tests) with 4-byte little-endian length prefixes. Message bodies
// are JSON, whose []byte fields are Base64-encoded — matching the
// paper's on-the-wire text encoding.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MaxFrame bounds a single frame; larger frames indicate corruption or
// abuse.
const MaxFrame = 16 << 20

// ErrFrameTooLarge is returned for frames exceeding MaxFrame.
var ErrFrameTooLarge = errors.New("wire: frame too large")

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload))
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: writing frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("wire: writing frame body: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed frame.
func ReadFrame(r io.Reader) ([]byte, error) {
	return ReadFrameAppend(r, nil)
}

// ReadFrameAppend reads one length-prefixed frame into buf's capacity
// (growing it as needed) and returns the frame. Callers that own a
// connection's read loop pass the previous return value back in, so a
// long-lived connection stops allocating a fresh buffer per frame; the
// returned frame is only valid until the next call with the same buf.
func ReadFrameAppend(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err // io.EOF passes through for clean shutdown
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("wire: reading frame body: %w", err)
	}
	return buf, nil
}
