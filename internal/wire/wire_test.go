package wire

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{
		nil,
		{},
		[]byte("a"),
		bytes.Repeat([]byte("xyz"), 10000),
	}
	for _, p := range payloads {
		buf.Reset()
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("round trip mismatch for %d bytes", len(p))
		}
	}
}

func TestFrameRoundTripQuick(t *testing.T) {
	f := func(payload []byte) bool {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, payload); err != nil {
			return false
		}
		got, err := ReadFrame(&buf)
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFrameSizeLimit(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversize write: %v", err)
	}
	// A forged oversize header must be rejected before allocation.
	buf.Reset()
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(&buf); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversize header: %v", err)
	}
}

func TestFrameTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Cut inside the body.
	if _, err := ReadFrame(bytes.NewReader(raw[:7])); err == nil {
		t.Fatal("truncated body accepted")
	}
	// Cut inside the header.
	if _, err := ReadFrame(bytes.NewReader(raw[:2])); err == nil {
		t.Fatal("truncated header accepted")
	}
	// Clean EOF at a frame boundary surfaces as io.EOF.
	if _, err := ReadFrame(bytes.NewReader(nil)); !errors.Is(err, io.EOF) {
		t.Fatalf("empty stream: %v", err)
	}
}

func TestFramesOverSocket(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	go func() {
		_ = WriteFrame(client, []byte("first"))
		_ = WriteFrame(client, []byte("second"))
	}()
	a, err := ReadFrame(server)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReadFrame(server)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != "first" || string(b) != "second" {
		t.Fatalf("got %q, %q", a, b)
	}
}

func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("seed payload")); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3})
	f.Fuzz(func(t *testing.T, raw []byte) {
		payload, err := ReadFrame(bytes.NewReader(raw))
		if err != nil {
			return
		}
		// A decoded frame must re-frame to the identical bytes consumed.
		var out bytes.Buffer
		if err := WriteFrame(&out, payload); err != nil {
			t.Fatalf("decoded frame does not re-encode: %v", err)
		}
		if !bytes.Equal(out.Bytes(), raw[:out.Len()]) {
			t.Fatal("re-framed bytes differ from input prefix")
		}
	})
}
