// Package enclavemeter enforces the metered-enclave-boundary
// discipline: every touch of the matcher store — a scheme.Slice
// method or one of streamhub.Hub's direct per-slice methods — must
// happen inside a charged enclave entry, either an sgx.Enclave.Ecall
// body or a resident switchless ring worker. A store access outside
// that boundary silently bypasses the simulated EPC cost model
// (internal/simmem), so every paper-facing number produced afterwards
// lies about enclave transition and paging cost.
//
// The check is lexical: a call to a metered method must sit inside a
// function literal passed to an Ecall call, or inside a function
// whose doc comment carries the boundary marker
//
//	// scbr:vet enclave-boundary: <why the meter is already charged>
//
// which is how the resident workers — whose enclave entry is charged
// once via ChargeTransition, not per call — declare themselves. The
// marker requires a justification, like every suppression.
//
// Packages that *are* the mechanism below the boundary (streamhub,
// scheme, aspe, core, sgx) are exempt: the invariant binds their
// callers.
package enclavemeter

import (
	"go/ast"
	"regexp"
	"strings"

	"scbr/internal/analysis"
)

// Analyzer is the enclavemeter analysis.
var Analyzer = &analysis.Analyzer{
	Name: "enclavemeter",
	Doc:  "check that matcher-store touches happen inside a metered enclave boundary",
	Run:  run,
}

// exempt packages implement the data plane below the boundary.
var exempt = map[string]bool{
	"streamhub": true, "scheme": true, "aspe": true, "core": true, "sgx": true,
}

// hubMethods are streamhub.Hub's direct per-slice store touches.
var hubMethods = map[string]bool{
	"MatchEncodedIn": true, "MatchEncodedBatchIn": true, "MatchSlice": true,
	"RegisterEncodedAt": true, "RegisterEncodedAssigned": true,
	"RegisterNormalizedAt": true, "RegisterAssignedIn": true,
	"ImportAssigned": true, "UnregisterIn": true, "DropCopy": true,
}

// sliceMethods are the scheme.Slice store surface.
var sliceMethods = map[string]bool{
	"Configure": true, "RegisterEncoded": true, "RegisterEncodedAssigned": true,
	"Unregister": true, "MatchEncoded": true, "MatchEncodedBatch": true,
}

// boundaryRE matches the resident-worker marker in a doc comment.
var boundaryRE = regexp.MustCompile(`scbr:vet enclave-boundary\s*(?::\s*(.*))?`)

func run(pass *analysis.Pass) (any, error) {
	if exempt[pass.Pkg.Name()] {
		return nil, nil
	}
	for _, fn := range pass.FuncDecls() {
		if sanctioned, ok := boundaryMarked(pass, fn); ok {
			if !sanctioned {
				pass.Reportf(fn.Pos(), "enclave-boundary marker without justification: add a reason after the colon")
			}
			continue
		}
		check(pass, fn.Body, false)
	}
	return nil, nil
}

// boundaryMarked reports whether fn carries the enclave-boundary
// marker, and whether it is justified.
func boundaryMarked(pass *analysis.Pass, fn *ast.FuncDecl) (justified, marked bool) {
	if fn.Doc == nil {
		return false, false
	}
	for _, c := range fn.Doc.List {
		if m := boundaryRE.FindStringSubmatch(c.Text); m != nil {
			return strings.TrimSpace(m[1]) != "", true
		}
	}
	return false, false
}

// check walks a body. inEcall is true while inside a function literal
// passed to an Ecall call; a nested literal NOT passed to Ecall (a
// goroutine spawned from inside the closure) leaves the boundary
// again.
func check(pass *analysis.Pass, body ast.Node, inEcall bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if _, method, ok := analysis.ReceiverAndMethod(n); ok && method == "Ecall" {
				// Non-literal arguments stay in the current context;
				// literal arguments enter the enclave.
				for _, arg := range n.Args {
					if lit, ok := arg.(*ast.FuncLit); ok {
						check(pass, lit.Body, true)
					} else {
						check(pass, arg, inEcall)
					}
				}
				check(pass, n.Fun, inEcall)
				return false
			}
			if metered(pass, n) && !inEcall {
				_, method, _ := analysis.ReceiverAndMethod(n)
				pass.Reportf(n.Pos(),
					"%s touches the matcher store outside the metered enclave boundary: wrap it in an Ecall body or mark the enclosing resident worker with a justified `scbr:vet enclave-boundary:` comment",
					method)
			}
		case *ast.FuncLit:
			// A literal reached here was not an Ecall argument (those
			// were consumed above): its body runs wherever it is later
			// invoked, which the lexical analysis must assume is
			// outside the enclave.
			check(pass, n.Body, false)
			return false
		}
		return true
	})
}

// metered reports whether call is a matcher-store touch: a
// scheme.Slice method or a streamhub.Hub per-slice method.
func metered(pass *analysis.Pass, call *ast.CallExpr) bool {
	recv, method, ok := analysis.ReceiverAndMethod(call)
	if !ok {
		return false
	}
	named := pass.NamedOf(recv)
	if named == nil {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	base := obj.Pkg().Name()
	switch {
	case obj.Name() == "Hub" && base == "streamhub":
		return hubMethods[method]
	case obj.Name() == "Slice" && base == "scheme":
		return sliceMethods[method]
	}
	return false
}
