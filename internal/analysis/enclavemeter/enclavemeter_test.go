package enclavemeter_test

import (
	"testing"

	"scbr/internal/analysis/analysistest"
	"scbr/internal/analysis/enclavemeter"
)

func TestEnclaveMeter(t *testing.T) {
	analysistest.Run(t, ".", enclavemeter.Analyzer, "enclavemeter_bad", "enclavemeter_good")
}
