// Boundary-respecting store access in the shapes the broker actually
// uses: the enclavemeter analyzer must stay silent here.
package enclavemeter_good

import (
	"scbr/internal/scheme"
	"scbr/internal/sgx"
	"scbr/internal/streamhub"
)

// insideEcall is the canonical charged entry: the literal passed to
// Ecall is the enclave body.
func insideEcall(e *sgx.Enclave, h *streamhub.Hub, enc []byte) error {
	return e.Ecall(func() error {
		_, err := h.MatchEncodedIn(0, enc, nil)
		return err
	})
}

// sliceInsideEcall drives the scheme surface from within the entry.
func sliceInsideEcall(e *sgx.Enclave, s scheme.Slice, enc []byte) error {
	return e.Ecall(func() error {
		_, err := s.RegisterEncoded(enc, 1)
		return err
	})
}

// residentWorker declares itself a charged boundary: its enclave entry
// is paid once via ChargeTransition by the ring dispatcher, so per-call
// Ecall wrapping would double-charge.
//
// scbr:vet enclave-boundary: entry charged once by the switchless ring dispatcher before the drain loop
func residentWorker(h *streamhub.Hub, encs [][]byte) {
	for _, enc := range encs {
		h.MatchEncodedIn(0, enc, nil)
	}
}

// unrelatedCalls never touch the metered surface.
func unrelatedCalls(h *streamhub.Hub) int {
	return h.Partitions()
}
