// Seeded enclave-boundary violations against the real streamhub and
// scheme types: every marked line must be diagnosed.
package enclavemeter_bad

import (
	"scbr/internal/scheme"
	"scbr/internal/sgx"
	"scbr/internal/streamhub"
)

// nakedHubTouch matches against the store with no enclave entry at
// all: the EPC cost model never sees it.
func nakedHubTouch(h *streamhub.Hub, enc []byte) {
	h.MatchEncodedIn(0, enc, nil) // want `MatchEncodedIn touches the matcher store outside the metered enclave boundary`
}

// nakedSliceTouch drives the scheme.Slice surface directly.
func nakedSliceTouch(s scheme.Slice, enc []byte) {
	s.RegisterEncoded(enc, 1) // want `RegisterEncoded touches the matcher store outside the metered enclave boundary`
}

// escapedGoroutine spawns a goroutine from inside the Ecall body: the
// literal outlives the enclave entry, so its store touch is unmetered.
func escapedGoroutine(e *sgx.Enclave, h *streamhub.Hub) {
	_ = e.Ecall(func() error {
		go func() {
			h.UnregisterIn(1) // want `UnregisterIn touches the matcher store outside the metered enclave boundary`
		}()
		return nil
	})
}

// afterTheCall touches the store in the same function as an Ecall but
// lexically outside its body.
func afterTheCall(e *sgx.Enclave, s scheme.Slice, enc []byte) {
	_ = e.Ecall(func() error { return nil })
	s.MatchEncoded(enc, nil) // want `MatchEncoded touches the matcher store outside the metered enclave boundary`
}

// unjustifiedMarker carries the boundary marker with no reason — the
// marker itself is the finding, and it does not exempt the body.
//
// scbr:vet enclave-boundary
func unjustifiedMarker(h *streamhub.Hub) { // want `enclave-boundary marker without justification`
	h.DropCopy(0, 1)
}
