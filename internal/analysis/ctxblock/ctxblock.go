// Package ctxblock enforces the PR 1 cancellation contract on
// context-taking exported APIs: a caller that passes a ctx must be
// able to cancel the call. Inside an exported function or method that
// takes a context.Context, the analyzer flags
//
//   - bare channel sends and receives outside any select (they block
//     forever if the peer is gone, and ctx cannot interrupt them),
//   - blocking selects (no default case) that do not select on a
//     Done() channel — ctx.Done() or a handle's own shutdown channel
//     derived from it,
//   - net.Dial / net.DialTimeout calls (use net.Dialer.DialContext),
//     and
//   - time.Sleep calls (use a timer select with ctx.Done()).
//
// Function literals inside the API (goroutine bodies, callbacks) are
// not the API's own blocking point and are skipped; unexported
// helpers are the callee's concern at their exported entry points.
package ctxblock

import (
	"go/ast"
	"go/types"

	"scbr/internal/analysis"
)

// Analyzer is the ctxblock analysis.
var Analyzer = &analysis.Analyzer{
	Name: "ctxblock",
	Doc:  "check that ctx-taking exported APIs stay cancellable (no bare channel ops or blocking net/sleep calls)",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, fn := range pass.FuncDecls() {
		if !fn.Name.IsExported() {
			continue
		}
		if pass.CtxParam(fn) == nil {
			continue
		}
		checkBody(pass, fn)
	}
	return nil, nil
}

// checkBody walks fn's own statements, skipping nested literals.
func checkBody(pass *analysis.Pass, fn *ast.FuncDecl) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			if !selectIsCancellable(n) {
				pass.Reportf(n.Pos(), "%s: blocking select without a <-ctx.Done() (or shutdown-channel) case: the caller's ctx cannot cancel it", fn.Name.Name)
			}
			// Case bodies still get checked; the comm clauses
			// themselves are the select's own business.
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					for _, s := range cc.Body {
						ast.Inspect(s, walk)
					}
				}
			}
			return false
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "%s: bare channel send outside select: blocks forever if the consumer is gone; select on it with <-ctx.Done()", fn.Name.Name)
			return false
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				pass.Reportf(n.Pos(), "%s: bare channel receive outside select: blocks forever if the producer is gone; select on it with <-ctx.Done()", fn.Name.Name)
				return false
			}
		case *ast.CallExpr:
			if pkg, name, ok := pkgFunc(pass, n); ok {
				switch {
				case pkg == "net" && (name == "Dial" || name == "DialTimeout"):
					pass.Reportf(n.Pos(), "%s: net.%s ignores ctx: use (&net.Dialer{}).DialContext(ctx, ...)", fn.Name.Name, name)
				case pkg == "time" && name == "Sleep":
					pass.Reportf(n.Pos(), "%s: time.Sleep ignores ctx: select on a timer and <-ctx.Done() instead", fn.Name.Name)
				}
			}
		}
		return true
	}
	ast.Inspect(fn.Body, walk)
}

// selectIsCancellable reports whether a select either cannot block (a
// default case) or watches a Done()-style channel: any receive case
// whose operand is a call named Done, or a bare channel identifier/
// selector whose name suggests a shutdown channel (done, closing,
// closed, quit, stop...). The name heuristic keeps handle-internal
// shutdown channels (s.done, r.closing) from flagging: those selects
// are cancellable, just not by this ctx — and the PR 1 contract is
// about never blocking uncancellably.
func selectIsCancellable(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			return true // default: never blocks
		}
		var recv ast.Expr
		switch s := cc.Comm.(type) {
		case *ast.ExprStmt:
			if u, ok := s.X.(*ast.UnaryExpr); ok && u.Op.String() == "<-" {
				recv = u.X
			}
		case *ast.AssignStmt:
			if len(s.Rhs) == 1 {
				if u, ok := s.Rhs[0].(*ast.UnaryExpr); ok && u.Op.String() == "<-" {
					recv = u.X
				}
			}
		}
		if recv == nil {
			continue
		}
		if isDoneChannel(recv) {
			return true
		}
	}
	return false
}

// isDoneChannel recognises ctx.Done()-shaped operands and named
// shutdown channels.
func isDoneChannel(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CallExpr:
		if _, name, ok := analysis.ReceiverAndMethod(e); ok {
			return name == "Done" || name == "Deadline" || name == "After"
		}
		if id, ok := e.Fun.(*ast.Ident); ok {
			return id.Name == "Done" || id.Name == "After"
		}
	case *ast.SelectorExpr:
		return shutdownName(e.Sel.Name)
	case *ast.Ident:
		return shutdownName(e.Name)
	}
	return false
}

func shutdownName(name string) bool {
	switch name {
	case "done", "Done", "closing", "closed", "quit", "stop", "stopCh", "shutdown":
		return true
	}
	return false
}

// pkgFunc resolves a call to package-level function pkg.Name.
func pkgFunc(pass *analysis.Pass, call *ast.CallExpr) (pkg, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isID := sel.X.(*ast.Ident)
	if !isID {
		return "", "", false
	}
	if pn, isPkg := pass.TypesInfo.Uses[id].(*types.PkgName); isPkg {
		return pn.Imported().Path(), sel.Sel.Name, true
	}
	return "", "", false
}
