package ctxblock_test

import (
	"testing"

	"scbr/internal/analysis/analysistest"
	"scbr/internal/analysis/ctxblock"
)

func TestCtxBlock(t *testing.T) {
	analysistest.Run(t, ".", ctxblock.Analyzer, "ctxblock_bad", "ctxblock_good")
}
