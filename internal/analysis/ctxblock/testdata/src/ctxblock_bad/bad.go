// Seeded cancellation-contract violations: exported ctx-taking APIs
// that can block forever. Every marked line must be diagnosed.
package ctxblock_bad

import (
	"context"
	"net"
	"time"
)

// Send blocks forever if the consumer is gone.
func Send(ctx context.Context, ch chan int) {
	ch <- 1 // want `bare channel send outside select`
}

// Recv blocks forever if the producer is gone.
func Recv(ctx context.Context, ch chan int) int {
	return <-ch // want `bare channel receive outside select`
}

// Wait selects, but nothing in the select can fire on cancellation.
func Wait(ctx context.Context, in chan int, out chan int) {
	select { // want `blocking select without`
	case v := <-in:
		_ = v
	case out <- 2:
	}
}

// Dial ignores the ctx it was handed.
func Dial(ctx context.Context, addr string) (net.Conn, error) {
	return net.Dial("tcp", addr) // want `net.Dial ignores ctx`
}

// Nap parks the caller with no way out.
func Nap(ctx context.Context) {
	time.Sleep(10 * time.Millisecond) // want `time.Sleep ignores ctx`
}
