// Cancellable blocking in the shapes PR 1 standardised: the ctxblock
// analyzer must stay silent here.
package ctxblock_good

import (
	"context"
	"net"
	"time"
)

type handle struct{ done chan struct{} }

// SendCancellable pairs the send with ctx.Done().
func SendCancellable(ctx context.Context, ch chan int) error {
	select {
	case ch <- 1:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// RecvCancellable pairs the receive with ctx.Done().
func RecvCancellable(ctx context.Context, ch chan int) (int, error) {
	select {
	case v := <-ch:
		return v, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// TryRecv never blocks: the default case makes the select polling.
func TryRecv(ctx context.Context, ch chan int) (int, bool) {
	select {
	case v := <-ch:
		return v, true
	default:
		return 0, false
	}
}

// HandleShutdown watches the handle's own shutdown channel, which is
// wired to ctx by the handle's owner.
func HandleShutdown(ctx context.Context, h *handle, ch chan int) {
	select {
	case <-h.done:
	case v := <-ch:
		_ = v
	}
}

// DialCancellable threads ctx into the dial.
func DialCancellable(ctx context.Context, addr string) (net.Conn, error) {
	var d net.Dialer
	return d.DialContext(ctx, "tcp", addr)
}

// SleepCancellable waits on a timer race against cancellation.
func SleepCancellable(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// WorkerSpawn: the goroutine body is not the API's own blocking point.
func WorkerSpawn(ctx context.Context, ch chan int) {
	go func() {
		ch <- 1
	}()
}

// unexportedSend is a callee-internal helper, out of scope.
func unexportedSend(ctx context.Context, ch chan int) {
	ch <- 1
}

// NoCtx takes no context, so the contract does not bind it.
func NoCtx(ch chan int) {
	ch <- 1
}
