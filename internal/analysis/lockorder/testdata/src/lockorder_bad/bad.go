// Seeded violations of the broker lock hierarchy: every line below
// marked `want` must be diagnosed by the lockorder analyzer.
package lockorder_bad

import "sync"

// Router mirrors the broker's named-lock convention; ranks attach by
// field name (keyMu < ctlMu < connMu) and by type.field for the
// generically named ones.
type Router struct {
	keyMu  sync.RWMutex
	ctlMu  sync.RWMutex
	connMu sync.Mutex
}

type partition struct{ mu sync.Mutex }

type deliveryTable struct{ mu sync.Mutex }

// inverted acquires control-plane locks above a delivery-table lock —
// the nesting the documented hierarchy forbids.
func (r *Router) inverted(dt *deliveryTable) {
	dt.mu.Lock()
	r.ctlMu.Lock() // want `violates the lock hierarchy`
	r.ctlMu.Unlock()
	dt.mu.Unlock()
}

// partitionAboveConn acquires connMu while holding a partition lock.
func (r *Router) partitionAboveConn(p *partition) {
	p.mu.Lock()
	r.connMu.Lock() // want `violates the lock hierarchy`
	r.connMu.Unlock()
	p.mu.Unlock()
}

// nestedSame deadlocks on itself.
func (r *Router) nestedSame() {
	r.connMu.Lock()
	r.connMu.Lock() // want `self-deadlock`
	r.connMu.Unlock()
	r.connMu.Unlock()
}

// leak never releases ctlMu on any path.
func (r *Router) leak(n *int) {
	r.ctlMu.Lock() // want `no paired Unlock`
	*n++
}

// earlyReturn leaks connMu on the conditional path only.
func (r *Router) earlyReturn(cond bool) int {
	r.connMu.Lock()
	if cond {
		return 1 // want `return while r.connMu is still locked`
	}
	r.connMu.Unlock()
	return 0
}

// literalLeak: the goroutine body is its own acquisition context and
// never unlocks what it locked.
func (r *Router) literalLeak() {
	go func() {
		r.keyMu.Lock() // want `no paired Unlock`
	}()
}
