// Hierarchy-respecting locking in every shape the broker actually
// uses: the lockorder analyzer must stay silent on this package.
package lockorder_good

import "sync"

type Router struct {
	keyMu  sync.RWMutex
	ctlMu  sync.RWMutex
	connMu sync.Mutex
}

type partition struct{ mu sync.Mutex }

type deliveryTable struct{ mu sync.Mutex }

// descending acquires strictly down the hierarchy.
func (r *Router) descending(p *partition, dt *deliveryTable) {
	r.keyMu.RLock()
	defer r.keyMu.RUnlock()
	r.ctlMu.RLock()
	defer r.ctlMu.RUnlock()
	p.mu.Lock()
	defer p.mu.Unlock()
	dt.mu.Lock()
	defer dt.mu.Unlock()
}

// sequential never nests, so order between tiers is irrelevant.
func (r *Router) sequential(dt *deliveryTable) {
	dt.mu.Lock()
	dt.mu.Unlock()
	r.ctlMu.Lock()
	r.ctlMu.Unlock()
}

// branchRelease unlocks on every return path explicitly.
func (r *Router) branchRelease(cond bool) int {
	r.connMu.Lock()
	if cond {
		r.connMu.Unlock()
		return 1
	}
	r.connMu.Unlock()
	return 0
}

// deferredClosure releases through a deferred closure.
func (r *Router) deferredClosure() {
	r.ctlMu.Lock()
	defer func() {
		r.ctlMu.Unlock()
	}()
}

// perValue locks two different partitions: distinct values of the
// same tier never rank-conflict.
func (r *Router) perValue(a, b *partition) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // same tier, different slice: allowed by the hierarchy
	defer b.mu.Unlock()
}

// loopBody releases inside the loop body it locked in.
func (r *Router) loopBody(parts []*partition) {
	for _, p := range parts {
		p.mu.Lock()
		p.mu.Unlock()
	}
}
