// Package lockorder enforces the broker's documented lock hierarchy
// (internal/broker/router.go):
//
//	keyMu → ctlMu → connMu → per-partition (partition.mu) → delivery
//	table (deliveryTable.mu, then clientState.sendMu, clientState.mu)
//
// A goroutine may only acquire locks in non-decreasing rank order;
// acquiring a lower-ranked mutex while holding a higher-ranked one is
// the nesting that deadlocks the moment two paths disagree. The
// analyzer builds a static intra-procedural acquisition graph per
// function: it walks each body in source order tracking the held set
// (branch bodies are walked with a cloned set, so an early-unlock-
// and-return path does not leak into the fall-through path) and
// reports
//
//   - an acquisition that violates the rank order,
//   - a nested acquisition of the same mutex (self-deadlock),
//   - a return reached while a non-deferred lock is still held, and
//   - a Lock with no paired Unlock (or defer Unlock) anywhere in the
//     function.
//
// Mutexes are identified by field name for the router's uniquely
// named locks (keyMu, ctlMu, connMu) and by Type.field for the
// generically named ones (partition.mu, deliveryTable.mu, ...), so
// the check follows the values wherever the receiver travels. The
// analysis is intra-procedural: a lock passed to a helper that
// unlocks it is out of scope and earns a justified suppression, not a
// weaker rule.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"

	"scbr/internal/analysis"
)

// Analyzer is the lockorder analysis.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "check mutex acquisitions against the broker's documented lock hierarchy",
	Run:  run,
}

// fieldRank ranks the uniquely named router locks by field name, so
// the rule applies to any struct that adopts the naming convention
// (including testdata).
var fieldRank = map[string]int{
	"keyMu":  10,
	"ctlMu":  20,
	"connMu": 30,
}

// typeFieldRank ranks generically named locks by TypeName.field.
var typeFieldRank = map[string]int{
	"partition.mu":       40,
	"deliveryTable.mu":   50,
	"clientState.sendMu": 51,
	"clientState.mu":     52,
}

// lockKey identifies one mutex value as precisely as an
// intra-procedural analysis can: the receiver chain rendered as text
// (r.keyMu, p.mu, st.sendMu) plus its resolved rank.
type lockKey struct {
	expr string // printed selector chain, e.g. "r.ctlMu"
	name string // rank key, e.g. "ctlMu" or "partition.mu"
	rank int    // 0 = unranked (pairing checks only)
}

type heldLock struct {
	key      lockKey
	pos      token.Pos
	deferred bool // a defer Unlock pins it until return, legitimately
}

func run(pass *analysis.Pass) (any, error) {
	for _, fn := range pass.FuncDecls() {
		checkFunc(pass, fn.Name.Name, fn.Body)
		// Function literals are their own acquisition contexts: a
		// goroutine or callback body does not inherit the caller's
		// textual lock state.
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				checkFunc(pass, fn.Name.Name+" (func literal)", lit.Body)
			}
			return true
		})
	}
	return nil, nil
}

// lockOp classifies one statement's mutex operation.
type lockOp struct {
	key    lockKey
	method string // Lock, RLock, Unlock, RUnlock
	pos    token.Pos
}

// opOf recognises x.Lock()/x.Unlock()/x.RLock()/x.RUnlock() on a
// ranked or rankable mutex selector.
func opOf(pass *analysis.Pass, call *ast.CallExpr) (lockOp, bool) {
	recv, method, ok := analysis.ReceiverAndMethod(call)
	if !ok {
		return lockOp{}, false
	}
	switch method {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return lockOp{}, false
	}
	sel, ok := recv.(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	// The mutex must be a sync.Mutex/RWMutex field.
	if named := mutexNamed(pass, sel); named == "" {
		return lockOp{}, false
	}
	field := sel.Sel.Name
	key := lockKey{expr: exprString(sel), name: field}
	if r, ok := fieldRank[field]; ok {
		key.rank = r
	} else if owner := pass.NamedOf(sel.X); owner != nil {
		tf := owner.Obj().Name() + "." + field
		if r, ok := typeFieldRank[tf]; ok {
			key.rank, key.name = r, tf
		}
	}
	return lockOp{key: key, method: method, pos: call.Pos()}, true
}

// mutexNamed reports the sync mutex type name ("Mutex"/"RWMutex") of
// a selector, or "" when it is not a mutex.
func mutexNamed(pass *analysis.Pass, sel *ast.SelectorExpr) string {
	t := pass.TypesInfo.TypeOf(sel)
	if t == nil {
		return ""
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return ""
	}
	if obj.Name() == "Mutex" || obj.Name() == "RWMutex" {
		return obj.Name()
	}
	return ""
}

// exprString renders a selector chain (best effort) for diagnostics
// and for matching Lock/Unlock pairs on the same value.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "()"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	}
	return "?"
}

// checkFunc runs the source-order lock scan over one function body.
func checkFunc(pass *analysis.Pass, name string, body *ast.BlockStmt) {
	s := &scanState{pass: pass, fn: name}
	s.scanStmts(body.List, nil)
	// Whole-function pairing: a mutex locked somewhere but never
	// unlocked anywhere (not even a deferred or closure unlock) has no
	// release path at all.
	for expr, pos := range s.locked {
		if !s.unlocked[expr] {
			pass.Reportf(pos, "%s: %s.Lock() has no paired Unlock or defer Unlock in this function", s.fn, expr)
		}
	}
}

type scanState struct {
	pass     *analysis.Pass
	fn       string
	locked   map[string]token.Pos // every expr Locked in this function
	unlocked map[string]bool      // every expr Unlocked (incl. defers/closures)
}

// note records global pairing facts.
func (s *scanState) note(op lockOp) {
	if s.locked == nil {
		s.locked = make(map[string]token.Pos)
		s.unlocked = make(map[string]bool)
	}
	switch op.method {
	case "Lock", "RLock":
		if _, ok := s.locked[op.key.expr]; !ok {
			s.locked[op.key.expr] = op.pos
		}
	case "Unlock", "RUnlock":
		s.unlocked[op.key.expr] = true
	}
}

// scanStmts walks statements in source order, threading the held set
// through and returning it. Branch bodies get cloned sets.
func (s *scanState) scanStmts(stmts []ast.Stmt, held []heldLock) []heldLock {
	for _, st := range stmts {
		held = s.scanStmt(st, held)
	}
	return held
}

func clone(held []heldLock) []heldLock {
	return append([]heldLock(nil), held...)
}

func (s *scanState) scanStmt(st ast.Stmt, held []heldLock) []heldLock {
	switch st := st.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if op, ok := opOf(s.pass, call); ok {
				return s.apply(op, held, false)
			}
		}
	case *ast.DeferStmt:
		if op, ok := opOf(s.pass, st.Call); ok {
			return s.apply(op, held, true)
		}
		// `defer func() { mu.Unlock() }()` releases at return too.
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if op, ok := opOf(s.pass, call); ok && (op.method == "Unlock" || op.method == "RUnlock") {
						held = s.apply(op, held, true)
					}
				}
				return true
			})
			return held
		}
	case *ast.ReturnStmt:
		for _, h := range held {
			if !h.deferred {
				s.pass.Reportf(st.Pos(), "%s: return while %s is still locked (no Unlock on this path)", s.fn, h.key.expr)
			}
		}
	case *ast.BlockStmt:
		return s.scanStmts(st.List, held)
	case *ast.IfStmt:
		if st.Init != nil {
			held = s.scanStmt(st.Init, held)
		}
		s.scanStmts(st.Body.List, clone(held))
		if st.Else != nil {
			s.scanStmt(st.Else, clone(held))
		}
	case *ast.ForStmt:
		s.scanStmts(st.Body.List, clone(held))
	case *ast.RangeStmt:
		s.scanStmts(st.Body.List, clone(held))
	case *ast.SwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.scanStmts(cc.Body, clone(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.scanStmts(cc.Body, clone(held))
			}
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				s.scanStmts(cc.Body, clone(held))
			}
		}
	case *ast.LabeledStmt:
		return s.scanStmt(st.Stmt, held)
	}
	return held
}

// apply folds one lock operation into the held set, reporting order
// violations on acquisition.
func (s *scanState) apply(op lockOp, held []heldLock, deferred bool) []heldLock {
	s.note(op)
	switch op.method {
	case "Lock", "RLock":
		for _, h := range held {
			if h.key.expr == op.key.expr {
				s.pass.Reportf(op.pos, "%s: %s acquired while already held (self-deadlock)", s.fn, op.key.expr)
			} else if h.key.rank > 0 && op.key.rank > 0 && h.key.rank > op.key.rank {
				s.pass.Reportf(op.pos,
					"%s: %s (%s) acquired while holding %s (%s): violates the lock hierarchy keyMu → ctlMu → connMu → partition.mu → delivery table",
					s.fn, op.key.expr, op.key.name, h.key.expr, h.key.name)
			}
		}
		return append(held, heldLock{key: op.key, pos: op.pos, deferred: deferred})
	case "Unlock", "RUnlock":
		if deferred {
			// defer mu.Unlock(): the matching lock stays held to the
			// end of the function, legitimately.
			for i := range held {
				if held[i].key.expr == op.key.expr && !held[i].deferred {
					held[i].deferred = true
					break
				}
			}
			return held
		}
		for i := len(held) - 1; i >= 0; i-- {
			if held[i].key.expr == op.key.expr {
				return append(held[:i:i], held[i+1:]...)
			}
		}
	}
	return held
}
