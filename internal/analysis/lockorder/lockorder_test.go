package lockorder_test

import (
	"testing"

	"scbr/internal/analysis/analysistest"
	"scbr/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, ".", lockorder.Analyzer, "lockorder_bad", "lockorder_good")
}
