// Package analysistest runs one analyzer over a testdata package and
// checks its diagnostics against `// want` comments — the same
// contract as golang.org/x/tools/go/analysis/analysistest, rebuilt on
// the repository's own framework so analyzer tests need no external
// module.
//
// A testdata package lives in <analyzer>/testdata/src/<name>/ and is
// ordinary Go (type-checked, so seeded bad examples must still
// compile). Every line that should produce a diagnostic carries
//
//	expr // want "regexp"
//
// with one quoted regexp per expected diagnostic on that line. Lines
// without a want comment must stay silent. Testdata may import the
// standard library and this module's packages (the export-data
// importer resolves both), so bad examples can be written against the
// real streamhub.Hub or scheme.Slice types.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"scbr/internal/analysis"
)

// wantRE pulls the quoted expectations out of a want comment.
var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads testdata/src/<pkg> for each named package (relative to
// dir, typically the analyzer's own directory), runs the analyzer,
// and reports every mismatch between diagnostics and want comments as
// a test error.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	root, err := analysis.ModuleRoot(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	loader := analysis.NewLoader(root)
	for _, name := range pkgs {
		pkgDir := filepath.Join(dir, "testdata", "src", name)
		pkg, err := loader.LoadDir(pkgDir, name)
		if err != nil {
			t.Fatalf("analysistest: loading %s: %v", pkgDir, err)
		}
		wants, err := collectWants(loader.Fset, pkg.Files)
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		findings, err := analysis.RunAnalyzers(loader, []*analysis.Package{pkg}, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("analysistest: running %s on %s: %v", a.Name, name, err)
		}
		for _, f := range findings {
			if w := matchWant(wants, f); w != nil {
				w.matched = true
				continue
			}
			t.Errorf("%s: unexpected diagnostic: %s", name, f)
		}
		for _, w := range wants {
			if !w.matched {
				t.Errorf("%s: %s:%d: expected diagnostic matching %s, got none", name, w.file, w.line, w.raw)
			}
		}
	}
}

// collectWants parses every want comment in the package.
func collectWants(fset *token.FileSet, files []*ast.File) ([]*expectation, error) {
	var out []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(m[1])
				for rest != "" {
					if rest[0] != '"' && rest[0] != '`' {
						return nil, fmt.Errorf("%s:%d: malformed want comment near %q", pos.Filename, pos.Line, rest)
					}
					raw, tail, err := splitQuoted(rest)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: %v", pos.Filename, pos.Line, err)
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp: %v", pos.Filename, pos.Line, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: strconv.Quote(raw)})
					rest = strings.TrimSpace(tail)
				}
			}
		}
	}
	return out, nil
}

// splitQuoted splits one leading Go-quoted string off rest.
func splitQuoted(rest string) (val, tail string, err error) {
	quote := rest[0]
	for i := 1; i < len(rest); i++ {
		if rest[i] == '\\' && quote == '"' {
			i++
			continue
		}
		if rest[i] == quote {
			val, err := strconv.Unquote(rest[:i+1])
			return val, rest[i+1:], err
		}
	}
	return "", "", fmt.Errorf("unterminated want string: %s", rest)
}

// matchWant finds an unmatched expectation for finding f.
func matchWant(wants []*expectation, f analysis.Finding) *expectation {
	for _, w := range wants {
		if !w.matched && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
			return w
		}
	}
	return nil
}
