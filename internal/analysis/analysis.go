// Package analysis is a self-contained static-analysis framework in
// the shape of golang.org/x/tools/go/analysis, built only on the
// standard library so the repository stays dependency-free: an
// Analyzer inspects one type-checked package through a Pass and
// reports Diagnostics, and a checker drives a suite of analyzers over
// `go list` package patterns (cmd/scbr-vet is that multichecker).
//
// The point of the suite is the data plane's unwritten invariants —
// rules the compiler cannot see and `-race` only catches when a test
// happens to interleave the wrong way: the broker's documented lock
// hierarchy, the metered-enclave-boundary discipline, sync.Pool
// lifetimes on the pooled frame path, the PR 1 context-cancellation
// contract, and the typed sentinel taxonomy on the wire. Each lives
// in its own subpackage; docs/analysis.md is the catalogue.
//
// Suppressions: a finding is silenced by a justified marker comment
//
//	// scbr:vet ignore(<analyzer>): <why this one is fine>
//
// at the end of the offending line or alone on the line above. The
// justification is mandatory — an ignore() without one is itself
// reported — so every suppression documents why the invariant holds
// anyway, the same contract nolint-style markers rot without.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named invariant check. Run inspects a single
// package via its Pass and reports findings; the return value is
// unused by the checker (kept for x/tools API symmetry).
type Analyzer struct {
	Name string // short lower-case identifier, used in ignore() markers
	Doc  string // one-paragraph description of the invariant
	Run  func(*Pass) (any, error)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// NamedOf resolves an expression's type to its named type, looking
// through pointers — the receiver-type test every analyzer that keys
// on "a method of streamhub.Hub" or "a field of broker.partition"
// performs. Returns nil when the type is unnamed.
func (p *Pass) NamedOf(e ast.Expr) *types.Named {
	tv, ok := p.TypesInfo.Types[e]
	if !ok {
		return nil
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// FuncDecls yields every function declaration in the package with a
// body, in file order.
func (p *Pass) FuncDecls() []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}

// CtxParam returns the object of fn's context.Context parameter, or
// nil when the function takes none (or takes one unnamed).
func (p *Pass) CtxParam(fn *ast.FuncDecl) types.Object {
	if fn.Type.Params == nil {
		return nil
	}
	for _, field := range fn.Type.Params.List {
		named, ok := p.TypesInfo.TypeOf(field.Type).(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context" {
			for _, name := range field.Names {
				if o := p.TypesInfo.Defs[name]; o != nil {
					return o
				}
			}
		}
	}
	return nil
}

// ReceiverAndMethod splits a call like x.M(...) into the receiver
// expression and method name. ok is false for non-selector calls.
func ReceiverAndMethod(call *ast.CallExpr) (recv ast.Expr, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	return sel.X, sel.Sel.Name, true
}
