package wireerr_test

import (
	"testing"

	"scbr/internal/analysis/analysistest"
	"scbr/internal/analysis/wireerr"
)

func TestWireErr(t *testing.T) {
	analysistest.Run(t, ".", wireerr.Analyzer, "wireerr_bad", "wireerr_good")
}
