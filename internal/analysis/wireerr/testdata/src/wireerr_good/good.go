// Taxonomy-respecting error flow: sentinels wrapped with %w, frames
// built only inside the encoder. The wireerr analyzer must stay
// silent here.
package wireerr_good

import (
	"errors"
	"fmt"
	"io"
)

// Message mirrors the broker's wire envelope shape.
type Message struct {
	Op   string
	Err  string
	Code string
}

// ErrNotFound is a package sentinel, part of the wire taxonomy.
var ErrNotFound = errors.New("not found")

func codeFor(err error) string {
	if errors.Is(err, ErrNotFound) {
		return "ENOTFOUND"
	}
	return ""
}

// sendErr is the sanctioned encoder: the one place an error frame is
// assembled, with Code stamped from the chain.
func sendErr(w io.Writer, err error) {
	m := Message{Err: err.Error(), Code: codeFor(err)}
	_, _ = w.Write([]byte(m.Err + m.Code))
}

// wrappedSentinel keeps the sentinel in the chain through %w.
func wrappedSentinel(w io.Writer, id uint64) {
	sendErr(w, fmt.Errorf("subscription %d: %w", id, ErrNotFound))
}

// bareSentinel sends the sentinel itself.
func bareSentinel(w io.Writer) {
	sendErr(w, ErrNotFound)
}

// variableError: a chain built elsewhere is the callee's concern, not
// statically refutable here.
func variableError(w io.Writer, err error) {
	sendErr(w, err)
}

// replyFrame sets no Err field: data frames are not error frames.
func replyFrame(w io.Writer) {
	m := Message{Op: "pub"}
	_, _ = w.Write([]byte(m.Op))
}

// notAnEnvelope has an Err field but no Code: not the wire shape.
type notAnEnvelope struct {
	Err string
}

func otherStruct() notAnEnvelope {
	return notAnEnvelope{Err: "local"}
}
