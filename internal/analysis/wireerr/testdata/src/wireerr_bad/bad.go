// Seeded wire-taxonomy violations: errors that cross the encoder with
// no sentinel in their chain, and hand-built error frames. Every
// marked line must be diagnosed.
package wireerr_bad

import (
	"errors"
	"fmt"
	"io"
)

// Message mirrors the broker's wire envelope shape.
type Message struct {
	Op   string
	Err  string
	Code string
}

func sendErr(w io.Writer, err error) {
	_, _ = w.Write([]byte(err.Error()))
}

// freshError crosses the wire with an empty Code: client errors.Is
// sees nothing.
func freshError(w io.Writer) {
	sendErr(w, errors.New("subscription not found")) // want `no sentinel in its chain`
}

// wrappedNothing formats without %w, so the chain is still empty.
func wrappedNothing(w io.Writer, id uint64) {
	sendErr(w, fmt.Errorf("subscription %d not found", id)) // want `fmt.Errorf without %w`
}

// handFrame builds the error envelope by hand, bypassing codeFor.
func handFrame(w io.Writer) {
	m := Message{Err: "boom", Code: "EBOOM"} // want `hand-built error frame`
	_ = m
}
