// Package wireerr enforces the typed sentinel taxonomy on the wire
// (PR 1): every error that crosses the wire encoder must carry one of
// the broker's sentinel errors in its chain, because the encoder
// stamps the machine-readable Code from codeFor(err) and the client
// side rebuilds errors.Is-compatible errors from that code. An error
// built fresh at the send site — errors.New(...), or fmt.Errorf
// without a %w verb — has no sentinel in its chain, crosses with an
// empty Code, and silently breaks client-side errors.Is.
//
// The analyzer flags
//
//   - sendErr(w, errors.New(...)) and sendErr(w, fmt.Errorf(...))
//     with no %w in the format: wrap a sentinel, or use sendErrf,
//     which is the documented escape hatch for ad-hoc protocol
//     violations that deliberately have no class, and
//   - wire-envelope literals (a struct named Message with Err and
//     Code string fields) that set Err outside the sanctioned encoder
//     (a function named sendErr) — hand-built error frames bypass
//     codeFor entirely.
package wireerr

import (
	"go/ast"
	"go/types"
	"strings"

	"scbr/internal/analysis"
)

// Analyzer is the wireerr analysis.
var Analyzer = &analysis.Analyzer{
	Name: "wireerr",
	Doc:  "check that errors crossing the wire encoder carry a typed sentinel in their chain",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, fn := range pass.FuncDecls() {
		inEncoder := fn.Name.Name == "sendErr"
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkSendErr(pass, n)
			case *ast.CompositeLit:
				if !inEncoder {
					checkEnvelope(pass, n)
				}
			}
			return true
		})
	}
	return nil, nil
}

// checkSendErr flags sendErr calls whose error argument provably
// wraps no sentinel.
func checkSendErr(pass *analysis.Pass, call *ast.CallExpr) {
	name := ""
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	}
	if name != "sendErr" || len(call.Args) != 2 {
		return
	}
	arg := call.Args[1]
	inner, ok := arg.(*ast.CallExpr)
	if !ok {
		return // a variable: its chain is not statically known
	}
	pkg, fname, ok := pkgFunc(pass, inner)
	if !ok {
		return
	}
	switch {
	case pkg == "errors" && fname == "New":
		pass.Reportf(arg.Pos(), "error crosses the wire with no sentinel in its chain (Code will be empty, client errors.Is breaks): wrap a broker sentinel with fmt.Errorf(\"...: %%w\", Err...) or use sendErrf for a deliberately class-less protocol violation")
	case pkg == "fmt" && fname == "Errorf":
		if len(inner.Args) > 0 {
			if lit, okLit := inner.Args[0].(*ast.BasicLit); okLit && !strings.Contains(lit.Value, "%w") {
				pass.Reportf(arg.Pos(), "fmt.Errorf without %%w wraps no sentinel: the error crosses the wire with an empty Code and client errors.Is breaks; wrap a sentinel or use sendErrf")
			}
		}
	}
}

// checkEnvelope flags wire-envelope literals that hand-build error
// frames.
func checkEnvelope(pass *analysis.Pass, lit *ast.CompositeLit) {
	named := pass.NamedOf(lit)
	if named == nil || named.Obj().Name() != "Message" {
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok || !isWireEnvelope(st) {
		return
	}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Err" {
			pass.Reportf(kv.Pos(), "hand-built error frame bypasses the wire encoder's sentinel taxonomy (Code is not stamped by codeFor): send errors through sendErr")
		}
	}
}

// isWireEnvelope recognises the wire Message shape: string fields Err
// and Code.
func isWireEnvelope(st *types.Struct) bool {
	var hasErr, hasCode bool
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if basic, ok := f.Type().(*types.Basic); ok && basic.Kind() == types.String {
			switch f.Name() {
			case "Err":
				hasErr = true
			case "Code":
				hasCode = true
			}
		}
	}
	return hasErr && hasCode
}

// pkgFunc resolves a call to a package-level function.
func pkgFunc(pass *analysis.Pass, call *ast.CallExpr) (pkg, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isID := sel.X.(*ast.Ident)
	if !isID {
		return "", "", false
	}
	if pn, isPkg := pass.TypesInfo.Uses[id].(*types.PkgName); isPkg {
		return pn.Imported().Path(), sel.Sel.Name, true
	}
	return "", "", false
}
