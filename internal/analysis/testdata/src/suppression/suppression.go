// Exercises the suppression engine: flagme() calls are diagnosed by
// the test-only analyzer in checker_test.go, and the markers below
// must silence, complain, or rot exactly as documented.
package suppression

func flagme() {}

// justifiedSameLine is silenced by an end-of-line marker.
func justifiedSameLine() {
	flagme() // scbr:vet ignore(flagme): exercised by checker_test, known-good call
}

// justifiedLineAbove is silenced by a marker on the line above.
func justifiedLineAbove() {
	// scbr:vet ignore(flagme): exercised by checker_test, marker-above form
	flagme()
}

// unjustified converts the diagnostic into a justification finding.
func unjustified() {
	flagme() // scbr:vet ignore(flagme)
}

// unsilenced must surface as a plain finding.
func unsilenced() {
	flagme()
}

// stale marks a line with nothing to silence: the marker itself rots.
func stale() {
	// scbr:vet ignore(flagme): nothing here triggers the analyzer
	_ = 1
}

// otherAnalyzer names an analyzer outside the run and is not judged.
func otherAnalyzer() {
	// scbr:vet ignore(someother): out of this run's scope
	_ = 2
}
