package analysis

import (
	"go/ast"
	"path/filepath"
	"strings"
	"testing"
)

// flagmeAnalyzer diagnoses every call to a function literally named
// flagme — a minimal analyzer that gives the suppression engine
// something deterministic to silence.
var flagmeAnalyzer = &Analyzer{
	Name: "flagme",
	Doc:  "test-only: flag calls to flagme()",
	Run: func(pass *Pass) (any, error) {
		for _, fn := range pass.FuncDecls() {
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "flagme" {
						pass.Reportf(call.Pos(), "call to flagme")
					}
				}
				return true
			})
		}
		return nil, nil
	},
}

// TestSuppressionEngine checks the full marker contract on the
// suppression testdata package: justified markers silence (same line
// and line above), unjustified markers become findings, uncovered
// diagnostics surface, stale markers rot, and markers naming analyzers
// outside the run are left alone.
func TestSuppressionEngine(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader := NewLoader(root)
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "suppression"), "suppression")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := RunAnalyzers(loader, []*Package{pkg}, []*Analyzer{flagmeAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, f := range findings {
		got = append(got, f.String())
	}
	wants := []struct{ substr, why string }{
		{"suppression without justification", "unjustified marker must become a finding"},
		{"call to flagme", "unsilenced call must surface"},
		{"unused suppression", "stale marker must rot"},
	}
	if len(findings) != len(wants) {
		t.Fatalf("got %d findings, want %d:\n%s", len(findings), len(wants), strings.Join(got, "\n"))
	}
	for _, w := range wants {
		found := false
		for _, g := range got {
			if strings.Contains(g, w.substr) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: no finding containing %q in:\n%s", w.why, w.substr, strings.Join(got, "\n"))
		}
	}
	for _, g := range got {
		if strings.Contains(g, "someother") {
			t.Errorf("marker naming an out-of-run analyzer was judged: %s", g)
		}
	}
}
