// Pool discipline done right, in the shapes the broker's frame path
// uses: the pooledframe analyzer must stay silent here.
package pooledframe_good

import "sync"

var bufPool = sync.Pool{New: func() any { return make([]byte, 0, 64) }}

type frame struct{ data []byte }

var framePool = sync.Pool{New: func() any { return new(frame) }}

func sink(b []byte) {}

// resetThenPut is the canonical borrow: grow, use, length-reset, Put.
func resetThenPut() {
	b := bufPool.Get().([]byte)
	b = append(b, 1, 2, 3)
	sink(b)
	bufPool.Put(b[:0])
}

// assignReset resets via an explicit reslice statement before Put.
func assignReset() {
	b := bufPool.Get().([]byte)
	b = append(b, 4)
	sink(b)
	b = b[:0]
	bufPool.Put(b)
}

// structPut: the reset rule binds slices only; pooled structs manage
// their own fields.
func structPut() {
	f := framePool.Get().(*frame)
	f.data = f.data[:0]
	framePool.Put(f)
}

// branchPut releases on the early path and keeps using the buffer on
// the fall-through: a Put on one branch does not poison the other.
func branchPut(cond bool) {
	b := bufPool.Get().([]byte)
	if cond {
		bufPool.Put(b[:0])
		return
	}
	b = append(b, 9)
	sink(b)
	bufPool.Put(b[:0])
}

// reGet rebinds after a Put: the fresh borrow is a fresh lifetime.
func reGet() {
	b := bufPool.Get().([]byte)
	bufPool.Put(b[:0])
	b = bufPool.Get().([]byte)
	sink(b)
	bufPool.Put(b[:0])
}

// copyOut is the sanctioned escape: the caller gets its own bytes.
func copyOut(n int) []byte {
	b := bufPool.Get().([]byte)
	b = append(b, make([]byte, n)...)
	out := make([]byte, len(b))
	copy(out, b)
	bufPool.Put(b[:0])
	return out
}
