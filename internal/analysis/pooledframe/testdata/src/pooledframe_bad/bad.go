// Seeded sync.Pool lifetime violations: every marked line must be
// diagnosed by the pooledframe analyzer.
package pooledframe_bad

import "sync"

var bufPool = sync.Pool{New: func() any { return make([]byte, 0, 64) }}

func sink(b []byte) {}

// useAfterPut reads the buffer after its pooled lifetime ended.
func useAfterPut() {
	b := bufPool.Get().([]byte)
	b = b[:0]
	bufPool.Put(b)
	sink(b) // want `used after being returned to the pool`
}

// doublePut returns the same borrow twice on one path.
func doublePut() {
	b := bufPool.Get().([]byte)
	bufPool.Put(b[:0])
	bufPool.Put(b[:0]) // want `returned to the pool twice`
}

// putWithoutReset leaks this frame's bytes into the next borrower.
func putWithoutReset() {
	b := bufPool.Get().([]byte)
	b = append(b, 0xCA, 0xFE)
	sink(b)
	bufPool.Put(b) // want `without a length reset`
}

// deferredPutWithoutReset defers the Put of a grown slice.
func deferredPutWithoutReset() {
	b := bufPool.Get().([]byte)
	defer bufPool.Put(b) // want `deferred-Put without a length reset`
	b = append(b, 1)
	sink(b)
}

// escapingView returns a window into a buffer whose lifetime this
// function ends: the caller and the pool's next borrower now share
// bytes.
func escapingView(n int) []byte {
	b := bufPool.Get().([]byte)
	defer bufPool.Put(b[:0])
	return b[:n] // want `returning a view of pooled`
}
