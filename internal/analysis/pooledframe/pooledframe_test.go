package pooledframe_test

import (
	"testing"

	"scbr/internal/analysis/analysistest"
	"scbr/internal/analysis/pooledframe"
)

func TestPooledFrame(t *testing.T) {
	analysistest.Run(t, ".", pooledframe.Analyzer, "pooledframe_bad", "pooledframe_good")
}
