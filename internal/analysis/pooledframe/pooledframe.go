// Package pooledframe enforces sync.Pool buffer discipline on the
// pooled frame path (PR 7): a value obtained from a pool is borrowed,
// not owned, so
//
//   - it must not be used after it was Put back (the pool may already
//     have handed it to another goroutine — a data race the type
//     system cannot see),
//   - no view of it (the value, a subslice of it) may be returned by
//     a function that also ends its pooled lifetime with Put, and
//   - a pooled slice must be length-reset (v = v[:0] or Put(v[:0]))
//     before Put, or the next borrower starts with stale elements —
//     stale frame bytes, in the broker's case.
//
// The analysis is intra-procedural and branch-aware: it tracks which
// identifiers were bound from a (sync.Pool).Get result, walks each
// function in source order with cloned state per branch (a Put on an
// early-return path does not poison the fall-through path), and
// reports at the offending use / return / Put.
package pooledframe

import (
	"go/ast"
	"go/types"

	"scbr/internal/analysis"
)

// Analyzer is the pooledframe analysis.
var Analyzer = &analysis.Analyzer{
	Name: "pooledframe",
	Doc:  "check sync.Pool Get/Put lifetimes on the pooled frame path",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, fn := range pass.FuncDecls() {
		checkFunc(pass, fn.Body)
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				checkFunc(pass, lit.Body)
			}
			return true
		})
	}
	return nil, nil
}

// poolState is the walker's per-path state, keyed by variable object.
type poolState struct {
	pooled map[types.Object]bool // bound from a pool Get in this function
	put    map[types.Object]bool // already returned to the pool on this path
	reset  map[types.Object]bool // length-reset since Get on this path
	didPut map[types.Object]bool // whole-function: a Put exists somewhere
}

func (s *poolState) clone() *poolState {
	c := &poolState{pooled: s.pooled, didPut: s.didPut,
		put: make(map[types.Object]bool, len(s.put)), reset: make(map[types.Object]bool, len(s.reset))}
	for k, v := range s.put {
		c.put[k] = v
	}
	for k, v := range s.reset {
		c.reset[k] = v
	}
	return c
}

type walker struct {
	pass *analysis.Pass
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	w := &walker{pass: pass}
	st := &poolState{
		pooled: make(map[types.Object]bool),
		put:    make(map[types.Object]bool),
		reset:  make(map[types.Object]bool),
		didPut: make(map[types.Object]bool),
	}
	// Pre-pass: find pool-bound identifiers and whether each is Put
	// anywhere in this function (the lifetime-ends-here signal the
	// escape rule needs), without descending into nested literals.
	w.prescan(body, st)
	if len(st.pooled) == 0 {
		return
	}
	w.walkStmts(body.List, st)
}

// isPoolCall reports whether call is a (sync.Pool) method call.
func (w *walker) isPoolCall(call *ast.CallExpr, method string) bool {
	recv, m, ok := analysis.ReceiverAndMethod(call)
	if !ok || m != method {
		return false
	}
	named := w.pass.NamedOf(recv)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Pool" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// bindings extracts the variable objects an assignment binds to a
// pool Get result: x := P.Get(), x := P.Get().(T), x, _ := ...
func (w *walker) bindings(as *ast.AssignStmt) []types.Object {
	if len(as.Rhs) != 1 {
		return nil
	}
	rhs := as.Rhs[0]
	if ta, ok := rhs.(*ast.TypeAssertExpr); ok {
		rhs = ta.X
	}
	call, ok := rhs.(*ast.CallExpr)
	if !ok || !w.isPoolCall(call, "Get") {
		return nil
	}
	var out []types.Object
	if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
		if obj := w.pass.TypesInfo.Defs[id]; obj != nil {
			out = append(out, obj)
		} else if obj := w.pass.TypesInfo.Uses[id]; obj != nil {
			out = append(out, obj)
		}
	}
	return out
}

// putArg resolves the object a Put call returns to the pool, when the
// argument is a tracked identifier (possibly resliced: Put(v[:0])).
func (w *walker) putArg(call *ast.CallExpr) (types.Object, bool /*resetInArg*/) {
	if len(call.Args) != 1 {
		return nil, false
	}
	arg := call.Args[0]
	reset := false
	if sl, ok := arg.(*ast.SliceExpr); ok && sl.Low == nil && isZeroLit(sl.High) {
		arg, reset = sl.X, true
	}
	id, ok := arg.(*ast.Ident)
	if !ok {
		return nil, reset
	}
	return w.pass.TypesInfo.Uses[id], reset
}

func isZeroLit(e ast.Expr) bool {
	if bl, ok := e.(*ast.BasicLit); ok {
		return bl.Value == "0"
	}
	return false
}

// prescan records pooled bindings and whole-function Put facts.
func (w *walker) prescan(body *ast.BlockStmt, st *poolState) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, obj := range w.bindings(n) {
				st.pooled[obj] = true
			}
		case *ast.CallExpr:
			if w.isPoolCall(n, "Put") {
				if obj, _ := w.putArg(n); obj != nil {
					st.didPut[obj] = true
				}
			}
		}
		return true
	})
}

// walkStmts threads state through statements in source order.
func (w *walker) walkStmts(stmts []ast.Stmt, st *poolState) {
	for _, s := range stmts {
		w.walkStmt(s, st)
	}
}

func (w *walker) walkStmt(s ast.Stmt, st *poolState) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		// Uses on the RHS first (right-to-left evaluation is fine for
		// a use check), then rebindings clear path state.
		for _, r := range s.Rhs {
			w.checkUses(r, st)
		}
		for _, obj := range w.bindings(s) {
			// Re-Get rebinds: a fresh borrow clears put/reset marks.
			delete(st.put, obj)
			delete(st.reset, obj)
		}
		// v = v[:0] marks a length reset.
		if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
			if lhs, ok := s.Lhs[0].(*ast.Ident); ok {
				if sl, ok := s.Rhs[0].(*ast.SliceExpr); ok && sl.Low == nil && isZeroLit(sl.High) {
					if base, ok := sl.X.(*ast.Ident); ok && base.Name == lhs.Name {
						if obj := w.pass.TypesInfo.Uses[base]; obj != nil && st.pooled[obj] {
							st.reset[obj] = true
						}
					}
				}
			}
		}
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok && w.isPoolCall(call, "Put") {
			w.handlePut(call, st)
			return
		}
		w.checkUses(s.X, st)
	case *ast.DeferStmt:
		if w.isPoolCall(s.Call, "Put") {
			// defer P.Put(v): releases at return; uses in the body
			// precede it dynamically, so no path marking.
			w.handleDeferredPut(s.Call, st)
			return
		}
		w.checkUses(s.Call, st)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.checkEscape(r, st)
			w.checkUses(r, st)
		}
	case *ast.BlockStmt:
		w.walkStmts(s.List, st)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		w.checkUses(s.Cond, st)
		w.walkStmts(s.Body.List, st.clone())
		if s.Else != nil {
			w.walkStmt(s.Else, st.clone())
		}
	case *ast.ForStmt:
		w.walkStmts(s.Body.List, st.clone())
	case *ast.RangeStmt:
		w.checkUses(s.X, st)
		w.walkStmts(s.Body.List, st.clone())
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, st.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, st.clone())
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.walkStmts(cc.Body, st.clone())
			}
		}
	case *ast.GoStmt:
		w.checkUses(s.Call, st)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt, st)
	default:
		// Other statements: check embedded expressions for uses.
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				w.checkUses(e, st)
				return false
			}
			return true
		})
	}
}

// handlePut applies the reset rule and marks the path state.
func (w *walker) handlePut(call *ast.CallExpr, st *poolState) {
	obj, resetInArg := w.putArg(call)
	if obj == nil || !st.pooled[obj] {
		return
	}
	if st.put[obj] {
		w.pass.Reportf(call.Pos(), "%s is returned to the pool twice on this path", obj.Name())
	}
	if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice && !resetInArg && !st.reset[obj] {
		w.pass.Reportf(call.Pos(), "pooled slice %s is Put without a length reset (%s = %s[:0]): the next Get sees stale elements", obj.Name(), obj.Name(), obj.Name())
	}
	st.put[obj] = true
}

func (w *walker) handleDeferredPut(call *ast.CallExpr, st *poolState) {
	obj, resetInArg := w.putArg(call)
	if obj == nil || !st.pooled[obj] {
		return
	}
	if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice && !resetInArg {
		// A deferred Put cannot observe a later reset in this simple
		// source-order model; only Put(v[:0]) counts.
		w.pass.Reportf(call.Pos(), "pooled slice %s is deferred-Put without a length reset (use defer pool.Put(%s[:0]) after final growth, or Put explicitly)", obj.Name(), obj.Name())
	}
}

// checkUses reports reads of identifiers already Put on this path.
func (w *walker) checkUses(e ast.Expr, st *poolState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			_ = lit
			return false // nested literals are their own context
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := w.pass.TypesInfo.Uses[id]
		if obj != nil && st.put[obj] {
			w.pass.Reportf(id.Pos(), "%s is used after being returned to the pool: the pool may already have handed it to another goroutine", id.Name)
		}
		return true
	})
}

// checkEscape reports returning a pooled value (or a subslice of one)
// from a function that also Puts it — a view escaping the pooled
// lifetime.
func (w *walker) checkEscape(e ast.Expr, st *poolState) {
	base := e
	for {
		switch b := base.(type) {
		case *ast.SliceExpr:
			base = b.X
			continue
		case *ast.ParenExpr:
			base = b.X
			continue
		}
		break
	}
	id, ok := base.(*ast.Ident)
	if !ok {
		return
	}
	obj := w.pass.TypesInfo.Uses[id]
	if obj != nil && st.pooled[obj] && st.didPut[obj] {
		w.pass.Reportf(e.Pos(), "returning a view of pooled %s whose lifetime ends in this function (Put elsewhere in the body): copy it out instead", id.Name)
	}
}
