// The multichecker driver: run a suite of analyzers over loaded
// packages, apply justified suppression markers, and print findings
// in file:line:col order — the engine behind cmd/scbr-vet.

package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"regexp"
	"sort"
	"strings"
)

// ignoreRE matches a suppression marker: the words "scbr:vet ignore"
// at the start of a line comment, an analyzer list in parentheses, a
// colon, and the justification. Group 1 is the analyzer list
// (comma-separated), group 2 the justification (possibly empty, which
// is itself a finding). Anchoring to the comment start keeps prose
// that merely mentions the marker — docs, analyzer messages — from
// registering as a suppression.
var ignoreRE = regexp.MustCompile(`^//[ \t]*scbr:vet ignore\(([^)]*)\)\s*(?::\s*(.*))?$`)

// Finding is one post-suppression diagnostic with its position
// resolved.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
}

// suppression is one parsed ignore() marker.
type suppression struct {
	analyzers map[string]bool
	justified bool
	line      int
	file      string
	pos       token.Pos
	used      bool
}

// collectSuppressions parses every ignore() marker in the package. A
// marker suppresses findings on its own line and, when it is the only
// thing on its line, on the line below.
func collectSuppressions(fset *token.FileSet, files []*ast.File) []*suppression {
	var out []*suppression
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				s := &suppression{
					analyzers: make(map[string]bool),
					justified: strings.TrimSpace(m[2]) != "",
					pos:       c.Pos(),
				}
				for _, name := range strings.Split(m[1], ",") {
					s.analyzers[strings.TrimSpace(name)] = true
				}
				p := fset.Position(c.Pos())
				s.file, s.line = p.Filename, p.Line
				out = append(out, s)
			}
		}
	}
	return out
}

// RunAnalyzers runs every analyzer over every package and returns the
// surviving findings: suppressed diagnostics are dropped, unjustified
// or unused suppressions are themselves findings.
func RunAnalyzers(loader *Loader, pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		sups := collectSuppressions(loader.Fset, pkg.Files)
		for _, a := range analyzers {
			var diags []Diagnostic
			pass := &Pass{
				Analyzer:  a,
				Fset:      loader.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				report:    func(d Diagnostic) { diags = append(diags, d) },
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %v", a.Name, pkg.PkgPath, err)
			}
			for _, d := range diags {
				pos := loader.Fset.Position(d.Pos)
				if s := suppressing(sups, a.Name, pos); s != nil {
					s.used = true
					if !s.justified {
						findings = append(findings, Finding{
							Analyzer: a.Name,
							Pos:      loader.Fset.Position(s.pos),
							Message:  "suppression without justification: add a reason after the colon",
						})
					}
					continue
				}
				findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
		}
		// A marker that silenced nothing is rot: either the finding it
		// covered was fixed (delete the marker) or the marker is
		// misplaced (it silently fails to cover what its author meant).
		// Only markers naming an analyzer in this run can be judged.
		for _, s := range sups {
			if s.used {
				continue
			}
			covered := false
			for _, a := range analyzers {
				if s.analyzers[a.Name] {
					covered = true
					break
				}
			}
			if !covered {
				continue
			}
			findings = append(findings, Finding{
				Analyzer: "suppression",
				Pos:      loader.Fset.Position(s.pos),
				Message:  "unused suppression: no diagnostic on this line or the line below; delete the marker or move it to the finding it should cover",
			})
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// suppressing returns the marker covering a diagnostic of analyzer
// name at pos, if any: same file, same line or the line above.
func suppressing(sups []*suppression, name string, pos token.Position) *suppression {
	for _, s := range sups {
		if s.file != pos.Filename || !s.analyzers[name] {
			continue
		}
		if s.line == pos.Line || s.line == pos.Line-1 {
			return s
		}
	}
	return nil
}

// Vet is the whole scbr-vet pipeline: load the patterns, run the
// suite, print findings to w. It returns the finding count.
func Vet(root string, patterns []string, analyzers []*Analyzer, w io.Writer) (int, error) {
	loader := NewLoader(root)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return 0, err
	}
	findings, err := RunAnalyzers(loader, pkgs, analyzers)
	if err != nil {
		return 0, err
	}
	for _, f := range findings {
		fmt.Fprintln(w, f.String())
	}
	return len(findings), nil
}
