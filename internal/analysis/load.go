// Package loading without golang.org/x/tools: `go list -export`
// enumerates packages and compiles their dependencies' export data
// into the build cache, and go/importer's gc mode reads that export
// data back through a lookup function. Target packages are then
// parsed (with comments, for suppression markers) and type-checked
// from source against those imports. Everything is offline: the only
// external process is the go command over the local module.

package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// listPkg is the subset of `go list -json` output the loader uses.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// Package is one loaded, type-checked package ready for analysis.
// Only non-test sources are loaded: scbr-vet checks the shipped data
// plane, not the test harnesses that deliberately poke at it.
type Package struct {
	PkgPath string
	Dir     string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// Loader loads packages of the module rooted at Root. One Loader
// shares a FileSet and an export-data importer across every load, so
// repeated loads (the multichecker, the analyzer tests) stay cheap.
type Loader struct {
	Root string
	Fset *token.FileSet

	mu      sync.Mutex
	exports map[string]string // import path → export-data file
	imp     types.Importer
}

// NewLoader returns a loader for the module rooted at root.
func NewLoader(root string) *Loader {
	l := &Loader{Root: root, Fset: token.NewFileSet(), exports: make(map[string]string)}
	l.imp = importer.ForCompiler(l.Fset, "gc", l.lookup)
	return l
}

// ModuleRoot walks up from dir to the enclosing go.mod directory.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// list runs `go list -export -deps -json` for the patterns and
// records every listed package's export data. It returns the listed
// packages in command output order (dependencies first).
func (l *Loader) list(patterns ...string) ([]listPkg, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,Standard,DepOnly,GoFiles,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Root
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, p)
	}
	l.mu.Lock()
	for _, p := range pkgs {
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
	}
	l.mu.Unlock()
	return pkgs, nil
}

// lookup feeds the gc importer export data recorded by list, listing
// on demand for paths first seen as imports (the testdata loads).
func (l *Loader) lookup(path string) (io.ReadCloser, error) {
	l.mu.Lock()
	file, ok := l.exports[path]
	l.mu.Unlock()
	if !ok {
		if _, err := l.list(path); err != nil {
			return nil, err
		}
		l.mu.Lock()
		file, ok = l.exports[path]
		l.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
	}
	return os.Open(file)
}

// Load loads and type-checks the packages matching the go list
// patterns (e.g. "./..."), excluding dependency-only listings.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	listed, err := l.list(patterns...)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, p := range listed {
		if p.DepOnly || p.Standard {
			continue
		}
		var files []string
		for _, f := range p.GoFiles {
			files = append(files, filepath.Join(p.Dir, f))
		}
		pkg, err := l.check(p.ImportPath, p.Dir, files)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out, nil
}

// LoadDir loads the single package in dir (every non-test .go file)
// under the given import path — the analysistest entry point, which
// loads testdata packages the go tool itself never builds. Imports
// resolve through the module's export data, so testdata may import
// both the standard library and this module's packages.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %v", err)
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	return l.check(importPath, dir, files)
}

// check parses and type-checks one package from source.
func (l *Loader) check(importPath, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(l.Fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", importPath, err)
	}
	return &Package{PkgPath: importPath, Dir: dir, Files: files, Types: tpkg, Info: info}, nil
}
