package aspe

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"

	"scbr/internal/pubsub"
	"scbr/internal/simmem"
)

// BloomBits is the pre-filter size per subscription (DEBS'12 uses
// small per-subscription filters; 256 bits keeps the publication-side
// filter unsaturated even for ×4-attribute events).
const BloomBits = 256

const bloomWords = BloomBits / 64

// Bloom is a fixed-size Bloom filter over (attribute, value) pairs.
type Bloom [bloomWords]uint64

func (b *Bloom) add(id pubsub.AttrID, v float64) {
	h1, h2 := bloomHashes(id, v)
	b[(h1/64)%bloomWords] |= 1 << (h1 % 64)
	b[(h2/64)%bloomWords] |= 1 << (h2 % 64)
}

// subsetOf reports whether all bits of b are present in p — the
// candidate test: false means the publication cannot satisfy the
// subscription's equality constraints (no false negatives).
func (b *Bloom) subsetOf(p *Bloom) bool {
	for i := range b {
		if b[i]&^p[i] != 0 {
			return false
		}
	}
	return true
}

func bloomHashes(id pubsub.AttrID, v float64) (uint32, uint32) {
	h := fnv.New64a()
	var buf [10]byte
	binary.LittleEndian.PutUint16(buf[:2], uint16(id))
	binary.LittleEndian.PutUint64(buf[2:], math.Float64bits(v))
	_, _ = h.Write(buf[:])
	sum := h.Sum64()
	return uint32(sum % BloomBits), uint32((sum >> 32) % BloomBits)
}

// Options configure a Matcher.
type Options struct {
	// Prefilter enables the DEBS'12 Bloom pre-filtering of equality
	// constraints. Disabling it gives the plain ASPE baseline (used by
	// the ablation bench).
	Prefilter bool
}

// subEntry is the matcher-side handle of one registered subscription.
type subEntry struct {
	id      uint64
	vecOffs []uint64 // arena offsets, one ciphertext vector each
	qNorm   float64
	filter  Bloom
	hasEq   bool
}

// Matcher is the software-only encrypted matcher. Ciphertext vectors
// live in a metered arena so its LLC behaviour is simulated like the
// SCBR engine's; compute is charged per multiply-accumulate. The
// matcher never sees plaintext subscriptions after registration —
// registration is performed by the trusted side (the publisher in the
// paper's deployment), which holds the scheme.
type Matcher struct {
	scheme *Scheme
	acc    simmem.Accessor
	opts   Options
	subs   []subEntry
	nextID uint64

	// vec is the decode scratch for one ciphertext vector.
	vec []float64
}

// NewMatcher builds a matcher over the accessor.
func NewMatcher(scheme *Scheme, acc simmem.Accessor, opts Options) *Matcher {
	return &Matcher{scheme: scheme, acc: acc, opts: opts}
}

// vecBytes is the ciphertext size of one query vector.
func (m *Matcher) vecBytes() int { return m.scheme.Dim() * 8 }

// Register encrypts and stores a subscription, returning its ID.
func (m *Matcher) Register(sub *pubsub.Subscription) (uint64, error) {
	vecs, qNorm, err := m.scheme.QueryVectors(sub)
	if err != nil {
		return 0, err
	}
	ent := subEntry{qNorm: qNorm}
	// Registration-side encryption cost: one M⁻¹ multiply per vector.
	n := m.scheme.Dim()
	m.acc.Charge(uint64(float64(len(vecs)*n*n) * m.acc.Meter().Cost.MulAddCycles))
	buf := make([]byte, m.vecBytes())
	for _, v := range vecs {
		off, err := m.acc.Alloc(len(buf))
		if err != nil {
			return 0, fmt.Errorf("aspe: storing query vector: %w", err)
		}
		for i, x := range v {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(x))
		}
		m.acc.Write(off, buf)
		ent.vecOffs = append(ent.vecOffs, off)
	}
	for _, c := range sub.Constraints {
		if !c.IsEquality() {
			continue
		}
		ent.hasEq = true
		if c.Str {
			ent.filter.add(c.ID, valueScalar(pubsub.Str(c.EqS)))
		} else {
			ent.filter.add(c.ID, c.Lo)
		}
	}
	m.nextID++
	ent.id = m.nextID
	m.subs = append(m.subs, ent)
	return ent.id, nil
}

// Len returns the number of registered subscriptions.
func (m *Matcher) Len() int { return len(m.subs) }

// Meter exposes the matcher's cycle meter for experiment snapshots.
func (m *Matcher) Meter() *simmem.Meter { return m.acc.Meter() }

// Match encrypts the publication and scans all subscriptions,
// returning the IDs whose sign tests all pass. This is the matching
// step Figure 7 measures (encryption/decryption excluded there; the
// point encryption cost is charged separately and reported by the
// meter's crypto counters — we charge it as compute here for
// completeness but callers measuring only matching can snapshot
// counters around MatchEncrypted).
func (m *Matcher) Match(ev *pubsub.Event) ([]uint64, error) {
	point, err := m.scheme.EncryptPoint(ev)
	if err != nil {
		return nil, err
	}
	var filter Bloom
	for _, a := range ev.Attrs {
		filter.add(a.ID, valueScalar(a.Value))
	}
	return m.MatchEncrypted(point, &filter)
}

// MatchEncrypted matches a pre-encrypted point (with its publication
// Bloom filter) against the database.
func (m *Matcher) MatchEncrypted(point []float64, filter *Bloom) ([]uint64, error) {
	if len(point) != m.scheme.Dim() {
		return nil, fmt.Errorf("aspe: point has dimension %d, want %d", len(point), m.scheme.Dim())
	}
	cost := m.acc.Meter().Cost
	pNorm := PointNorm(point)
	if cap(m.vec) < m.scheme.Dim() {
		m.vec = make([]float64, m.scheme.Dim())
	}
	var out []uint64
	for si := range m.subs {
		ent := &m.subs[si]
		if m.opts.Prefilter && ent.hasEq {
			// Bloom subset test: a handful of word ops.
			m.acc.Charge(uint64(bloomWords) * 2)
			if !ent.filter.subsetOf(filter) {
				continue
			}
		}
		tol := m.scheme.Tolerance(pNorm, ent.qNorm)
		matched := true
		for _, off := range ent.vecOffs {
			raw := m.acc.Read(off, m.vecBytes())
			vec := m.vec[:m.scheme.Dim()]
			for i := range vec {
				vec[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
			}
			m.acc.Charge(uint64(float64(len(vec)) * cost.MulAddCycles))
			if Dot(point, vec) < -tol {
				matched = false
				break
			}
		}
		if matched {
			out = append(out, ent.id)
		}
	}
	return out, nil
}

// EncryptPublication exposes point encryption plus Bloom construction
// for callers that split encryption from matching (Figure 7 measures
// only the matching step).
func (m *Matcher) EncryptPublication(ev *pubsub.Event) ([]float64, *Bloom, error) {
	point, err := m.scheme.EncryptPoint(ev)
	if err != nil {
		return nil, nil, err
	}
	var filter Bloom
	for _, a := range ev.Attrs {
		filter.add(a.ID, valueScalar(a.Value))
	}
	return point, &filter, nil
}
