package aspe

import (
	"encoding/binary"
	"hash/fnv"
	"math"

	"scbr/internal/pubsub"
	"scbr/internal/simmem"
)

// BloomBits is the pre-filter size per subscription (DEBS'12 uses
// small per-subscription filters; 256 bits keeps the publication-side
// filter unsaturated even for ×4-attribute events).
const BloomBits = 256

const bloomWords = BloomBits / 64

// Bloom is a fixed-size Bloom filter over (attribute, value) pairs.
type Bloom [bloomWords]uint64

func (b *Bloom) add(id pubsub.AttrID, v float64) {
	h1, h2 := bloomHashes(id, v)
	b[(h1/64)%bloomWords] |= 1 << (h1 % 64)
	b[(h2/64)%bloomWords] |= 1 << (h2 % 64)
}

// subsetOf reports whether all bits of b are present in p — the
// candidate test: false means the publication cannot satisfy the
// subscription's equality constraints (no false negatives).
func (b *Bloom) subsetOf(p *Bloom) bool {
	for i := range b {
		if b[i]&^p[i] != 0 {
			return false
		}
	}
	return true
}

func bloomHashes(id pubsub.AttrID, v float64) (uint32, uint32) {
	h := fnv.New64a()
	var buf [10]byte
	binary.LittleEndian.PutUint16(buf[:2], uint16(id))
	binary.LittleEndian.PutUint64(buf[2:], math.Float64bits(v))
	_, _ = h.Write(buf[:])
	sum := h.Sum64()
	return uint32(sum % BloomBits), uint32((sum >> 32) % BloomBits)
}

// Options configure a Matcher or Store.
type Options struct {
	// Prefilter enables the DEBS'12 Bloom pre-filtering of equality
	// constraints. Disabling it gives the plain ASPE baseline (used by
	// the ablation bench).
	Prefilter bool
}

// Matcher bundles the scheme's trusted half (the Scheme holding the
// secret matrices) with an untrusted Store — the paper's
// single-process ASPE baseline, where registration-side encryption and
// matching are measured on one machine. The distributed deployment
// splits the halves: the publisher encodes with the Scheme, the router
// stores and matches with a Store it configures from the scheme's
// public dimension. Ciphertext vectors live in a metered arena so the
// matcher's LLC behaviour is simulated like the SCBR engine's; compute
// is charged per multiply-accumulate.
type Matcher struct {
	scheme *Scheme
	store  *Store
}

// NewMatcher builds a matcher over the accessor.
func NewMatcher(scheme *Scheme, acc simmem.Accessor, opts Options) *Matcher {
	store := NewStore(acc, opts)
	// The local scheme fixes the dimension; Configure on a fresh store
	// with a valid dimension cannot fail.
	if err := store.Configure(scheme.Dim()); err != nil {
		panic(err)
	}
	return &Matcher{scheme: scheme, store: store}
}

// Store exposes the matcher's untrusted half.
func (m *Matcher) Store() *Store { return m.store }

// Register encrypts and stores a subscription, returning its ID.
func (m *Matcher) Register(sub *pubsub.Subscription) (uint64, error) {
	es, err := m.scheme.EncodeSubscription(sub)
	if err != nil {
		return 0, err
	}
	// Registration-side encryption cost: one M⁻¹ multiply per vector.
	// The single-process baseline charges it to the matcher's meter; in
	// the distributed deployment this work happens at the publisher, on
	// real silicon.
	n := m.scheme.Dim()
	m.store.acc.Charge(uint64(float64(len(es.Vectors)*n*n) * m.store.acc.Meter().Cost.MulAddCycles))
	return m.store.Register(es, 0)
}

// Len returns the number of registered subscriptions.
func (m *Matcher) Len() int { return m.store.Len() }

// Meter exposes the matcher's cycle meter for experiment snapshots.
func (m *Matcher) Meter() *simmem.Meter { return m.store.Meter() }

// Match encrypts the publication and scans all subscriptions,
// returning the IDs whose sign tests all pass. This is the matching
// step Figure 7 measures (encryption/decryption excluded there; the
// point encryption cost is charged separately and reported by the
// meter's crypto counters — we charge it as compute here for
// completeness but callers measuring only matching can snapshot
// counters around MatchEncrypted).
func (m *Matcher) Match(ev *pubsub.Event) ([]uint64, error) {
	ep, err := m.scheme.EncodePublication(ev)
	if err != nil {
		return nil, err
	}
	return m.MatchEncrypted(ep.Point, &ep.Filter)
}

// MatchEncrypted matches a pre-encrypted point (with its publication
// Bloom filter) against the database.
func (m *Matcher) MatchEncrypted(point []float64, filter *Bloom) ([]uint64, error) {
	res, err := m.store.MatchEncoded(&EncodedPublication{Dim: len(point), Point: point, Filter: *filter}, nil)
	if err != nil {
		return nil, err
	}
	out := make([]uint64, 0, len(res))
	for _, r := range res {
		out = append(out, r.SubID)
	}
	return out, nil
}

// EncryptPublication exposes point encryption plus Bloom construction
// for callers that split encryption from matching (Figure 7 measures
// only the matching step).
func (m *Matcher) EncryptPublication(ev *pubsub.Event) ([]float64, *Bloom, error) {
	ep, err := m.scheme.EncodePublication(ev)
	if err != nil {
		return nil, nil, err
	}
	return ep.Point, &ep.Filter, nil
}

// subscriptionFilter builds the registration-side Bloom filter over a
// subscription's equality constraints.
func subscriptionFilter(cs []pubsub.Constraint) (Bloom, bool) {
	var f Bloom
	hasEq := false
	for _, c := range cs {
		if !c.IsEquality() {
			continue
		}
		hasEq = true
		if c.Str {
			f.add(c.ID, valueScalar(pubsub.Str(c.EqS)))
		} else {
			f.add(c.ID, c.Lo)
		}
	}
	return f, hasEq
}

// publicationFilter builds the publication-side Bloom filter over an
// event's attribute values.
func publicationFilter(ev *pubsub.Event) Bloom {
	var f Bloom
	for _, a := range ev.Attrs {
		f.add(a.ID, valueScalar(a.Value))
	}
	return f
}
