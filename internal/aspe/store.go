package aspe

import (
	"encoding/binary"
	"fmt"
	"math"

	"scbr/internal/simmem"
)

// Match identifies one matching subscription of a Store scan.
type Match struct {
	SubID     uint64
	ClientRef uint32
}

// entry is the store-side handle of one registered subscription.
type entry struct {
	id      uint64
	ref     uint32
	vecOffs []uint64 // arena offsets, one ciphertext vector each
	qNorm   float64
	filter  Bloom
	hasEq   bool
}

// Store is the router-side half of the ASPE scheme: it keeps encrypted
// query vectors in a metered arena and scans them against encrypted
// points. It never holds the scheme's secret matrices — the dimension
// (its only parameter) arrives with provisioning as a public scheme
// parameter. Compare Matcher, which bundles a Store with a Scheme for
// the paper's single-process baseline.
//
// Not safe for concurrent use; the broker serialises entries per
// partition, exactly as it does for the containment engine.
type Store struct {
	acc  simmem.Accessor
	opts Options
	dim  int // 0 until Configure

	subs   []entry
	index  map[uint64]int // subscription ID → subs slot
	nextID uint64

	// vec is the decode scratch for one ciphertext vector.
	vec []float64
	// pNorms and alive are MatchEncodedBatch scratch: per-item point
	// norms and per-item liveness during the shared database walk.
	pNorms []float64
	alive  []bool
}

// NewStore builds an unconfigured store over the accessor.
func NewStore(acc simmem.Accessor, opts Options) *Store {
	return &Store{acc: acc, opts: opts, index: make(map[uint64]int)}
}

// Configure fixes the vector dimensionality. Idempotent for the same
// dimension; changing it is only allowed while the store is empty
// (a re-provisioned universe invalidates every stored vector).
func (s *Store) Configure(dim int) error {
	if dim <= 0 || dim > MaxDim {
		return fmt.Errorf("aspe: dimension %d out of range", dim)
	}
	if s.dim == dim {
		return nil
	}
	if len(s.subs) > 0 {
		return fmt.Errorf("aspe: cannot re-dimension a store holding %d subscriptions (%d → %d)", len(s.subs), s.dim, dim)
	}
	s.dim = dim
	return nil
}

// Dim returns the configured dimensionality (0 before Configure).
func (s *Store) Dim() int { return s.dim }

// Len returns the number of registered subscriptions.
func (s *Store) Len() int { return len(s.subs) }

// Bytes returns the arena footprint, including garbage from
// unregistered entries (bump allocation, as in the engine).
func (s *Store) Bytes() uint64 { return s.acc.Size() }

// Accessor exposes the store's metered memory.
func (s *Store) Accessor() simmem.Accessor { return s.acc }

// Meter exposes the store's cycle meter.
func (s *Store) Meter() *simmem.Meter { return s.acc.Meter() }

// vecBytes is the ciphertext size of one query vector.
func (s *Store) vecBytes() int { return s.dim * 8 }

// Register stores an encoded subscription under a fresh ID.
func (s *Store) Register(es *EncodedSubscription, clientRef uint32) (uint64, error) {
	id := s.nextID + 1
	if err := s.insert(es, clientRef, id); err != nil {
		return 0, err
	}
	s.nextID = id
	return id, nil
}

// RegisterAssigned stores an encoded subscription under a
// caller-chosen ID — the state-restore path. The ID must be unused.
func (s *Store) RegisterAssigned(es *EncodedSubscription, clientRef uint32, id uint64) error {
	if id == 0 {
		return fmt.Errorf("aspe: subscription ID must be non-zero")
	}
	if _, exists := s.index[id]; exists {
		return fmt.Errorf("aspe: subscription ID %d already registered", id)
	}
	if err := s.insert(es, clientRef, id); err != nil {
		return err
	}
	if id > s.nextID {
		s.nextID = id
	}
	return nil
}

func (s *Store) insert(es *EncodedSubscription, clientRef uint32, id uint64) error {
	if s.dim == 0 {
		return fmt.Errorf("aspe: store not configured (no scheme parameters provisioned)")
	}
	if es.Dim != s.dim {
		return fmt.Errorf("aspe: subscription has dimension %d, store expects %d", es.Dim, s.dim)
	}
	ent := entry{id: id, ref: clientRef, qNorm: es.QNorm, filter: es.Filter, hasEq: es.HasEq}
	buf := make([]byte, s.vecBytes())
	for _, v := range es.Vectors {
		off, err := s.acc.Alloc(len(buf))
		if err != nil {
			return fmt.Errorf("aspe: storing query vector: %w", err)
		}
		for i, x := range v {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(x))
		}
		s.acc.Write(off, buf)
		ent.vecOffs = append(ent.vecOffs, off)
	}
	s.index[id] = len(s.subs)
	s.subs = append(s.subs, ent)
	return nil
}

// Unregister removes a subscription. Its arena vectors become garbage
// (bump allocation), exactly like unlinked engine records.
func (s *Store) Unregister(id uint64) error {
	slot, ok := s.index[id]
	if !ok {
		return fmt.Errorf("aspe: unknown subscription %d", id)
	}
	last := len(s.subs) - 1
	if slot != last {
		s.subs[slot] = s.subs[last]
		s.index[s.subs[slot].id] = slot
	}
	s.subs = s.subs[:last]
	delete(s.index, id)
	return nil
}

// MatchEncoded scans the database with an encoded publication,
// appending matches to out.
func (s *Store) MatchEncoded(ep *EncodedPublication, out []Match) ([]Match, error) {
	if s.dim == 0 {
		return nil, fmt.Errorf("aspe: store not configured (no scheme parameters provisioned)")
	}
	if ep.Dim != s.dim {
		return nil, fmt.Errorf("aspe: point has dimension %d, store expects %d", ep.Dim, s.dim)
	}
	cost := s.acc.Meter().Cost
	pNorm := PointNorm(ep.Point)
	if cap(s.vec) < s.dim {
		s.vec = make([]float64, s.dim)
	}
	for si := range s.subs {
		ent := &s.subs[si]
		if s.opts.Prefilter && ent.hasEq {
			// Bloom subset test: a handful of word ops.
			s.acc.Charge(uint64(bloomWords) * 2)
			if !ent.filter.subsetOf(&ep.Filter) {
				continue
			}
		}
		tol := toleranceFor(s.dim, pNorm, ent.qNorm)
		matched := true
		for _, off := range ent.vecOffs {
			raw := s.acc.Read(off, s.vecBytes())
			vec := s.vec[:s.dim]
			for i := range vec {
				vec[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
			}
			s.acc.Charge(uint64(float64(len(vec)) * cost.MulAddCycles))
			if Dot(ep.Point, vec) < -tol {
				matched = false
				break
			}
		}
		if matched {
			out = append(out, Match{SubID: ent.id, ClientRef: ent.ref})
		}
	}
	return out, nil
}

// MatchEncodedBatch scans the database once for a whole batch of
// encoded publications, appending each item's matches to its out slot.
// eps and out are parallel; nil items are skipped (their slots stay
// untouched), as are items whose dimensionality the store rejects —
// the same items the per-item path would have dropped with an error.
//
// The batch walk inverts the per-item loop: every subscription entry
// is visited once, its ciphertext vectors are read and decoded from
// the metered arena once, and each vector is sign-tested against all
// still-alive items. The arena reads — the dominant metered cost of a
// scan — are amortised across the batch, which is why simulated cost
// grows sub-linearly in batch size; the per-item sign-test and
// prefilter charges are unchanged, so the matched sets are exactly the
// per-item MatchEncoded results.
func (s *Store) MatchEncodedBatch(eps []*EncodedPublication, out [][]Match) error {
	if s.dim == 0 {
		return fmt.Errorf("aspe: store not configured (no scheme parameters provisioned)")
	}
	if len(out) < len(eps) {
		return fmt.Errorf("aspe: batch result slots %d < publications %d", len(out), len(eps))
	}
	cost := s.acc.Meter().Cost
	if cap(s.vec) < s.dim {
		s.vec = make([]float64, s.dim)
	}
	if cap(s.pNorms) < len(eps) {
		s.pNorms = make([]float64, len(eps))
		s.alive = make([]bool, len(eps))
	}
	pNorms, alive := s.pNorms[:len(eps)], s.alive[:len(eps)]
	for i, ep := range eps {
		if ep == nil || ep.Dim != s.dim {
			eps[i] = nil // dimension mismatch: dropped, like the per-item error
			continue
		}
		pNorms[i] = PointNorm(ep.Point)
	}
	for si := range s.subs {
		ent := &s.subs[si]
		live := 0
		for i, ep := range eps {
			if ep == nil {
				alive[i] = false
				continue
			}
			ok := true
			if s.opts.Prefilter && ent.hasEq {
				// Bloom subset test: a handful of word ops, per item.
				s.acc.Charge(uint64(bloomWords) * 2)
				ok = ent.filter.subsetOf(&ep.Filter)
			}
			alive[i] = ok
			if ok {
				live++
			}
		}
		if live == 0 {
			continue
		}
		for _, off := range ent.vecOffs {
			raw := s.acc.Read(off, s.vecBytes())
			vec := s.vec[:s.dim]
			for i := range vec {
				vec[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
			}
			for i, ep := range eps {
				if !alive[i] {
					continue
				}
				s.acc.Charge(uint64(float64(len(vec)) * cost.MulAddCycles))
				if Dot(ep.Point, vec) < -toleranceFor(s.dim, pNorms[i], ent.qNorm) {
					alive[i] = false
					live--
				}
			}
			if live == 0 {
				break
			}
		}
		for i := range eps {
			if alive[i] {
				out[i] = append(out[i], Match{SubID: ent.id, ClientRef: ent.ref})
			}
		}
	}
	return nil
}

// toleranceFor is the sign-test threshold for a (point, query) pair at
// dimensionality n: products above the negated bound count as ≥ 0. The
// rounding-error model ε·n·‖E(p)‖·‖E(q)‖ with ~10⁴× headroom over
// machine epsilon; see Scheme.Tolerance.
func toleranceFor(n int, pointNorm, queryNorm float64) float64 {
	return 1e-12 * float64(n) * (1 + pointNorm) * (1 + queryNorm)
}
