package aspe

import (
	"bytes"
	"math"
	"testing"
)

// FuzzDecodeSubscription hammers the registration-blob parser with
// arbitrary bytes: it must never panic or over-allocate, and anything
// it accepts must re-encode to the identical blob (the round-trip the
// router's seal/restore path relies on — logged blobs replay through
// the same decoder).
func FuzzDecodeSubscription(f *testing.F) {
	es := &EncodedSubscription{
		Dim:     6,
		Vectors: [][]float64{{1, 2, 3, 4, 5, 6}, {0.5, -1, 0, 7, 1e-9, 2}},
		QNorm:   9.25,
		HasEq:   true,
	}
	es.Filter[0] = 0xdeadbeef
	seed, err := AppendSubscription(nil, es)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{subMagic, codecVer})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		dec, err := DecodeSubscription(raw)
		if err != nil {
			return
		}
		out, err := AppendSubscription(nil, dec)
		if err != nil {
			t.Fatalf("accepted blob does not re-encode: %v", err)
		}
		if !bytes.Equal(out, raw) {
			t.Fatalf("round trip diverged: %d bytes in, %d out", len(raw), len(out))
		}
	})
}

// FuzzDecodePublication is the same property for header blobs.
func FuzzDecodePublication(f *testing.F) {
	ep := &EncodedPublication{Dim: 4, Point: []float64{1, -2, math.Pi, 0}}
	ep.Filter[2] = 42
	seed, err := AppendPublication(nil, ep)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{pubMagic, codecVer, 1, 0})
	f.Fuzz(func(t *testing.T, raw []byte) {
		dec, err := DecodePublication(raw)
		if err != nil {
			return
		}
		out, err := AppendPublication(nil, dec)
		if err != nil {
			t.Fatalf("accepted blob does not re-encode: %v", err)
		}
		if !bytes.Equal(out, raw) {
			t.Fatalf("round trip diverged: %d bytes in, %d out", len(raw), len(out))
		}
	})
}

// TestSubscriptionCodecRoundTrip pins the exact-field round trip on a
// representative encoding (the fuzz seeds only check re-encoding).
func TestSubscriptionCodecRoundTrip(t *testing.T) {
	es := &EncodedSubscription{
		Dim:     8,
		Vectors: [][]float64{{1, 2, 3, 4, 5, 6, 7, 8}},
		QNorm:   3.5,
		HasEq:   false,
	}
	raw, err := AppendSubscription(nil, es)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeSubscription(raw)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Dim != es.Dim || dec.QNorm != es.QNorm || dec.HasEq != es.HasEq ||
		len(dec.Vectors) != 1 || dec.Filter != es.Filter {
		t.Fatalf("decoded %+v", dec)
	}
	for i, v := range dec.Vectors[0] {
		if v != es.Vectors[0][i] {
			t.Fatalf("vector[%d] = %g", i, v)
		}
	}
}
