// Package aspe implements the paper's software-only baseline:
// asymmetric scalar-product-preserving encryption (ASPE, Choi et al.
// [7], after Wong et al.), enhanced with the Bloom-filter
// pre-filtering of Barazzutti et al. [4] ("thrifty privacy").
//
// Publications become points p̂ in an extended vector space and each
// subscription bound becomes a hyperplane sign test. With a secret
// invertible matrix M, points are encrypted as M^T·p̂ and query vectors
// as M⁻¹·q̂, so dot products — and therefore the sign tests — are
// preserved exactly while both sides remain encrypted. Matching cost
// per subscription is Θ(#bounds × dimensions), which grows quadratically
// with the attribute count — the behaviour that makes ASPE fall an
// order of magnitude behind SCBR in Figure 7 and degrade fastest on
// the ×2/×4-attribute workloads.
//
// Semantics are the scheme's, not SCBR's: bounds are closed (ASPE
// cannot express strict inequalities — one of the "degraded forms of
// range queries" limitations the paper cites), and absent attributes
// are handled with presence dimensions.
package aspe

import (
	"errors"
	"fmt"
	"math/rand"
)

// Matrix is a dense square matrix in row-major order.
type Matrix struct {
	N    int
	Data []float64
}

// NewMatrix allocates an N×N zero matrix.
func NewMatrix(n int) *Matrix {
	return &Matrix{N: n, Data: make([]float64, n*n)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.N+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.N+j] = v }

// MulVec computes dst = M · v.
func (m *Matrix) MulVec(dst, v []float64) {
	n := m.N
	for i := 0; i < n; i++ {
		sum := 0.0
		row := m.Data[i*n : (i+1)*n]
		for j, x := range v {
			sum += row[j] * x
		}
		dst[i] = sum
	}
}

// TMulVec computes dst = Mᵀ · v.
func (m *Matrix) TMulVec(dst, v []float64) {
	n := m.N
	for i := 0; i < n; i++ {
		dst[i] = 0
	}
	for j := 0; j < n; j++ {
		row := m.Data[j*n : (j+1)*n]
		x := v[j]
		for i := 0; i < n; i++ {
			dst[i] += row[i] * x
		}
	}
}

// ErrSingular is returned when inversion meets a (near-)singular
// matrix.
var ErrSingular = errors.New("aspe: singular matrix")

// Inverse computes M⁻¹ by Gauss-Jordan elimination with partial
// pivoting.
func (m *Matrix) Inverse() (*Matrix, error) {
	n := m.N
	a := make([]float64, len(m.Data))
	copy(a, m.Data)
	inv := NewMatrix(n)
	for i := 0; i < n; i++ {
		inv.Set(i, i, 1)
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := abs(a[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := abs(a[r*n+col]); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-12 {
			return nil, fmt.Errorf("%w: pivot %e at column %d", ErrSingular, best, col)
		}
		if pivot != col {
			swapRows(a, n, pivot, col)
			swapRows(inv.Data, n, pivot, col)
		}
		// Scale pivot row.
		p := a[col*n+col]
		for j := 0; j < n; j++ {
			a[col*n+j] /= p
			inv.Data[col*n+j] /= p
		}
		// Eliminate other rows.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a[r*n+col]
			if f == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				a[r*n+j] -= f * a[col*n+j]
				inv.Data[r*n+j] -= f * inv.Data[col*n+j]
			}
		}
	}
	return inv, nil
}

// NewRandomInvertible draws a random well-conditioned matrix: uniform
// entries in [-1, 1) with a boosted diagonal, which keeps Gauss-Jordan
// stable at the dimensions ASPE uses (d up to ~90).
func NewRandomInvertible(rng *rand.Rand, n int) *Matrix {
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := rng.Float64()*2 - 1
			if i == j {
				v += 2 * float64(n) / 8
			}
			m.Set(i, j, v)
		}
	}
	return m
}

func swapRows(a []float64, n, r1, r2 int) {
	for j := 0; j < n; j++ {
		a[r1*n+j], a[r2*n+j] = a[r2*n+j], a[r1*n+j]
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Dot returns the inner product of equal-length vectors.
func Dot(a, b []float64) float64 {
	sum := 0.0
	for i, x := range a {
		sum += x * b[i]
	}
	return sum
}
