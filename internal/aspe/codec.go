package aspe

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Wire encodings for the ASPE matching scheme. Unlike the sgx-plain
// scheme — whose registration and header blobs are plaintext encodings
// sealed under SK and opened inside the enclave — ASPE blobs ARE the
// ciphertext: the encrypted query vectors and points of Wong et al.
// The router stores and matches them without ever holding a key, which
// is the software-only deployment the paper compares SGX against.
//
// Layout (all integers little-endian):
//
//	subscription:  magic u8 | version u8 | dim u16 | nvec u16 |
//	               flags u8 | qnorm f64 | bloom [4]u64 | nvec·dim f64
//	publication:   magic u8 | version u8 | dim u16 |
//	               bloom [4]u64 | dim f64
//
// flags: bit0 = the subscription carries equality constraints (its
// Bloom filter participates in pre-filtering).

// Codec framing constants.
const (
	subMagic = 0xA5
	pubMagic = 0xA6
	codecVer = 1

	subFlagHasEq = 1 << 0
)

// MaxDim bounds the vector dimensionality accepted off the wire —
// 2·d+2 for the 16-bit attribute space would already be absurd; this
// keeps a hostile frame from demanding gigabytes.
const MaxDim = 1 << 14

// MaxVectors bounds the sign-test vectors of one subscription (three
// per constraint; one constraint per attribute of a sane universe).
const MaxVectors = 3 * (MaxDim / 2)

// ErrCodec indicates a malformed ASPE wire blob.
var ErrCodec = errors.New("aspe: malformed encoding")

// EncodedSubscription is the decoded form of one registration blob:
// everything the untrusted matcher stores.
type EncodedSubscription struct {
	Dim     int
	Vectors [][]float64
	QNorm   float64
	Filter  Bloom
	HasEq   bool
}

// EncodedPublication is the decoded form of one publication header
// blob: the encrypted point plus its Bloom filter.
type EncodedPublication struct {
	Dim    int
	Point  []float64
	Filter Bloom
}

// AppendSubscription serialises an encoded subscription.
func AppendSubscription(buf []byte, es *EncodedSubscription) ([]byte, error) {
	if es.Dim <= 0 || es.Dim > MaxDim {
		return nil, fmt.Errorf("aspe: dimension %d out of range", es.Dim)
	}
	if len(es.Vectors) > MaxVectors {
		return nil, fmt.Errorf("aspe: %d query vectors exceed the frame bound", len(es.Vectors))
	}
	buf = append(buf, subMagic, codecVer)
	buf = appendU16(buf, uint16(es.Dim))
	buf = appendU16(buf, uint16(len(es.Vectors)))
	var flags uint8
	if es.HasEq {
		flags |= subFlagHasEq
	}
	buf = append(buf, flags)
	buf = appendF64(buf, es.QNorm)
	for _, w := range es.Filter {
		buf = appendU64(buf, w)
	}
	for _, v := range es.Vectors {
		if len(v) != es.Dim {
			return nil, fmt.Errorf("aspe: query vector has dimension %d, want %d", len(v), es.Dim)
		}
		for _, x := range v {
			buf = appendF64(buf, x)
		}
	}
	return buf, nil
}

// DecodeSubscription parses AppendSubscription output.
func DecodeSubscription(raw []byte) (*EncodedSubscription, error) {
	hdr := 2 + 2 + 2 + 1 + 8 + 8*bloomWords
	if len(raw) < hdr {
		return nil, fmt.Errorf("%w: subscription blob of %d bytes", ErrCodec, len(raw))
	}
	if raw[0] != subMagic || raw[1] != codecVer {
		return nil, fmt.Errorf("%w: bad subscription magic/version %x.%x", ErrCodec, raw[0], raw[1])
	}
	dim := int(binary.LittleEndian.Uint16(raw[2:]))
	nvec := int(binary.LittleEndian.Uint16(raw[4:]))
	if dim == 0 || dim > MaxDim || nvec > MaxVectors {
		return nil, fmt.Errorf("%w: dim %d / %d vectors", ErrCodec, dim, nvec)
	}
	if raw[6]&^subFlagHasEq != 0 {
		return nil, fmt.Errorf("%w: unknown subscription flags %#x", ErrCodec, raw[6])
	}
	es := &EncodedSubscription{Dim: dim, HasEq: raw[6]&subFlagHasEq != 0}
	es.QNorm = math.Float64frombits(binary.LittleEndian.Uint64(raw[7:]))
	if math.IsNaN(es.QNorm) || math.IsInf(es.QNorm, 0) || es.QNorm < 0 {
		return nil, fmt.Errorf("%w: query norm %g", ErrCodec, es.QNorm)
	}
	pos := 15
	for i := range es.Filter {
		es.Filter[i] = binary.LittleEndian.Uint64(raw[pos:])
		pos += 8
	}
	if want := pos + nvec*dim*8; len(raw) != want {
		return nil, fmt.Errorf("%w: subscription blob is %d bytes, want %d", ErrCodec, len(raw), want)
	}
	es.Vectors = make([][]float64, nvec)
	for i := range es.Vectors {
		v := make([]float64, dim)
		for j := range v {
			v[j] = math.Float64frombits(binary.LittleEndian.Uint64(raw[pos:]))
			pos += 8
		}
		es.Vectors[i] = v
	}
	return es, nil
}

// AppendPublication serialises an encoded publication header.
func AppendPublication(buf []byte, ep *EncodedPublication) ([]byte, error) {
	if ep.Dim <= 0 || ep.Dim > MaxDim {
		return nil, fmt.Errorf("aspe: dimension %d out of range", ep.Dim)
	}
	if len(ep.Point) != ep.Dim {
		return nil, fmt.Errorf("aspe: point has dimension %d, want %d", len(ep.Point), ep.Dim)
	}
	buf = append(buf, pubMagic, codecVer)
	buf = appendU16(buf, uint16(ep.Dim))
	for _, w := range ep.Filter {
		buf = appendU64(buf, w)
	}
	for _, x := range ep.Point {
		buf = appendF64(buf, x)
	}
	return buf, nil
}

// DecodePublication parses AppendPublication output.
func DecodePublication(raw []byte) (*EncodedPublication, error) {
	var ep EncodedPublication
	if err := DecodePublicationInto(raw, &ep); err != nil {
		return nil, err
	}
	return &ep, nil
}

// DecodePublicationInto is DecodePublication reusing ep's point
// storage — the batch matching path decodes whole publish-batches per
// scan and would otherwise allocate a point per item per slice.
func DecodePublicationInto(raw []byte, ep *EncodedPublication) error {
	hdr := 2 + 2 + 8*bloomWords
	if len(raw) < hdr {
		return fmt.Errorf("%w: publication blob of %d bytes", ErrCodec, len(raw))
	}
	if raw[0] != pubMagic || raw[1] != codecVer {
		return fmt.Errorf("%w: bad publication magic/version %x.%x", ErrCodec, raw[0], raw[1])
	}
	dim := int(binary.LittleEndian.Uint16(raw[2:]))
	if dim == 0 || dim > MaxDim {
		return fmt.Errorf("%w: dim %d", ErrCodec, dim)
	}
	ep.Dim = dim
	pos := 4
	for i := range ep.Filter {
		ep.Filter[i] = binary.LittleEndian.Uint64(raw[pos:])
		pos += 8
	}
	if want := pos + dim*8; len(raw) != want {
		return fmt.Errorf("%w: publication blob is %d bytes, want %d", ErrCodec, len(raw), want)
	}
	if cap(ep.Point) < dim {
		ep.Point = make([]float64, dim)
	}
	ep.Point = ep.Point[:dim]
	for i := range ep.Point {
		ep.Point[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[pos:]))
		pos += 8
	}
	return nil
}

func appendU16(buf []byte, v uint16) []byte {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	return append(buf, b[:]...)
}

func appendU64(buf []byte, v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return append(buf, b[:]...)
}

func appendF64(buf []byte, v float64) []byte {
	return appendU64(buf, math.Float64bits(v))
}
