package aspe

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"math/rand"

	"scbr/internal/pubsub"
)

// Scheme fixes the attribute universe and holds the secret matrices.
// Vector layout (dimension n = 2d+2 for d attributes):
//
//	0..d-1   attribute values (hashed for strings, 0 when absent)
//	d..2d-1  presence bits (1 when the attribute is present)
//	2d       constant 1
//	2d+1     random component (no query ever selects it; it exists to
//	         blind the ciphertext, as in Wong et al.)
//
// A constraint l ≤ v_i ≤ u becomes up to three sign tests:
//
//	presence:  b_i − 1        ≥ 0
//	lower:     v_i − l        ≥ 0   (if a lower bound exists)
//	upper:     u  − v_i       ≥ 0   (if an upper bound exists)
//
// each expressed as a query vector q̂ with E(q) = M⁻¹·(r·q̂), r > 0
// random per vector, matched against E(p) = Mᵀ·p̂ via Dot ≥ −tolerance.
type Scheme struct {
	schema *pubsub.Schema
	index  map[pubsub.AttrID]int
	attrs  []pubsub.AttrID
	scales []float64
	frozen bool
	n      int
	m      *Matrix
	mInv   *Matrix
	rng    *rand.Rand
}

// hashMod bounds the normalised string-hash domain. Strings map to
// hash/hashMod ∈ [0, 1); 10⁷ slots keep the collision probability for
// a 500-symbol corpus near 1% while the 10⁻⁷ granularity stays orders
// of magnitude above the sign-test tolerance.
const hashMod = 10_000_000

// NewScheme builds a scheme over the given attribute universe.
// Publications and subscriptions may only reference these attributes —
// ASPE's fixed-dimensionality requirement (its space cost grows with
// the attribute count, the "space complexity grows exponentially with
// the number of attributes" drawback cited in the paper's intro for
// multi-dimensional variants).
func NewScheme(schema *pubsub.Schema, attrs []pubsub.AttrID, seed int64) (*Scheme, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("aspe: empty attribute universe")
	}
	s := &Scheme{
		schema: schema,
		index:  make(map[pubsub.AttrID]int, len(attrs)),
		attrs:  append([]pubsub.AttrID(nil), attrs...),
		rng:    rand.New(rand.NewSource(seed)),
	}
	for i, id := range attrs {
		if _, dup := s.index[id]; dup {
			return nil, fmt.Errorf("aspe: duplicate attribute %d in universe", id)
		}
		s.index[id] = i
	}
	s.scales = make([]float64, len(attrs))
	for i := range s.scales {
		s.scales[i] = 1
	}
	d := len(attrs)
	s.n = 2*d + 2
	s.m = NewRandomInvertible(s.rng, s.n)
	inv, err := s.m.Inverse()
	if err != nil {
		return nil, fmt.Errorf("aspe: building scheme: %w", err)
	}
	s.mInv = inv
	return s, nil
}

// Dim returns the vector dimensionality n.
func (s *Scheme) Dim() int { return s.n }

// KeyID fingerprints everything that fixes the meaning of this
// scheme's encodings: the attribute layout, the public scales, and the
// secret matrices. Two schemes with equal KeyIDs produce mutually
// matchable ciphertexts; a store provisioned under one KeyID must
// reject re-provisioning under another while it holds vectors (their
// dot products against the new scheme's points would be noise). A
// SHA-256 digest of the secrets is safe to publish — it reveals
// nothing invertible about the matrices.
func (s *Scheme) KeyID() string {
	h := sha256.New()
	for _, id := range s.attrs {
		name, _ := s.schema.Name(id)
		_, _ = io.WriteString(h, name)
		h.Write([]byte{0})
	}
	var buf [8]byte
	for _, sc := range s.scales {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(sc))
		h.Write(buf[:])
	}
	for _, v := range s.m.Data {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// NumAttrs returns the size of the attribute universe d.
func (s *Scheme) NumAttrs() int { return len(s.attrs) }

// valueScalar maps a value into the comparison domain: numeric values
// compare as float64; strings hash to a normalised slot in [0, 1),
// preserving equality (the only operator strings support).
func valueScalar(v pubsub.Value) float64 {
	if v.Numeric() {
		return v.AsFloat()
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(v.S))
	return float64(h.Sum64()%hashMod) / hashMod
}

// SetScale fixes the normalisation divisor of one numeric attribute.
// ASPE mixes attributes of wildly different magnitudes (cent-priced
// quotes next to nine-digit volumes) in one vector space, so without
// per-attribute scaling the floating-point tolerance of the sign test
// would be dominated by the largest attribute and misclassify narrow
// margins on the smallest — the practical deployment issue scalar-
// product schemes are known for. Scales are public parameters (they
// leak only coarse magnitude information) and must be set before the
// first encryption.
func (s *Scheme) SetScale(id pubsub.AttrID, scale float64) error {
	if s.frozen {
		return fmt.Errorf("aspe: scales are frozen after first encryption")
	}
	i, ok := s.index[id]
	if !ok {
		return fmt.Errorf("aspe: attribute %d outside scheme universe", id)
	}
	if scale <= 0 {
		return fmt.Errorf("aspe: scale must be positive, got %g", scale)
	}
	s.scales[i] = scale
	return nil
}

// CalibrateScales sets each numeric attribute's scale to the largest
// absolute value observed across the sample events (minimum 1).
func (s *Scheme) CalibrateScales(sample []*pubsub.Event) error {
	for _, ev := range sample {
		for _, a := range ev.Attrs {
			i, ok := s.index[a.ID]
			if !ok || !a.Value.Numeric() {
				continue
			}
			if v := absFloat(a.Value.AsFloat()); v > s.scales[i] {
				if s.frozen {
					return fmt.Errorf("aspe: scales are frozen after first encryption")
				}
				s.scales[i] = v
			}
		}
	}
	return nil
}

func absFloat(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// EncryptPoint encodes and encrypts a publication. The returned
// ciphertext is what the untrusted ASPE filter stores and matches on.
func (s *Scheme) EncryptPoint(ev *pubsub.Event) ([]float64, error) {
	s.frozen = true
	d := len(s.attrs)
	p := make([]float64, s.n)
	for _, a := range ev.Attrs {
		i, ok := s.index[a.ID]
		if !ok {
			return nil, fmt.Errorf("aspe: attribute %d outside scheme universe", a.ID)
		}
		if a.Value.Numeric() {
			p[i] = a.Value.AsFloat() / s.scales[i]
		} else {
			p[i] = valueScalar(a.Value)
		}
		p[d+i] = 1
	}
	p[2*d] = 1
	p[2*d+1] = s.rng.Float64() // blinding component
	out := make([]float64, s.n)
	s.m.TMulVec(out, p)
	return out, nil
}

// QueryVectors builds the encrypted sign-test vectors for one
// normalised subscription. The returned norm is the largest ciphertext
// vector norm; the matcher scales its sign-test tolerance with it (and
// with the point norm) to absorb the floating-point noise of M·M⁻¹ on
// boundary (exact-equality) products.
func (s *Scheme) QueryVectors(sub *pubsub.Subscription) ([][]float64, float64, error) {
	s.frozen = true
	d := len(s.attrs)
	var plain [][]float64
	for _, c := range sub.Constraints {
		i, ok := s.index[c.ID]
		if !ok {
			return nil, 0, fmt.Errorf("aspe: attribute %d outside scheme universe", c.ID)
		}
		// Presence test: b_i − 1 ≥ 0.
		q := make([]float64, s.n)
		q[d+i] = 1
		q[2*d] = -1
		plain = append(plain, q)
		if c.Str {
			if c.Prefix {
				// Prefix matching needs prefix-preserving encryption (Li
				// et al.), which plain ASPE does not provide — one of the
				// expressiveness gaps the paper holds against software-
				// only schemes.
				return nil, 0, fmt.Errorf("aspe: prefix constraints are not expressible (attribute %d)", c.ID)
			}
			// Equality via [h, h].
			h := valueScalar(pubsub.Str(c.EqS))
			lo := make([]float64, s.n)
			lo[i] = 1
			lo[2*d] = -h
			hi := make([]float64, s.n)
			hi[i] = -1
			hi[2*d] = h
			plain = append(plain, lo, hi)
			continue
		}
		if c.HasLo {
			// v_i − l ≥ 0 (closed; ASPE cannot express strictness).
			q := make([]float64, s.n)
			q[i] = 1
			q[2*d] = -c.Lo / s.scales[i]
			plain = append(plain, q)
		}
		if c.HasHi {
			// u − v_i ≥ 0.
			q := make([]float64, s.n)
			q[i] = -1
			q[2*d] = c.Hi / s.scales[i]
			plain = append(plain, q)
		}
	}
	out := make([][]float64, len(plain))
	maxNorm := 0.0
	for k, q := range plain {
		r := 0.5 + s.rng.Float64() // positive random scale
		for j := range q {
			q[j] *= r
		}
		enc := make([]float64, s.n)
		s.mInv.MulVec(enc, q)
		out[k] = enc
		if nrm := norm2(enc); nrm > maxNorm {
			maxNorm = nrm
		}
	}
	return out, maxNorm, nil
}

// Tolerance returns the sign-test threshold for a (point, query) pair:
// products above −Tolerance count as ≥ 0. The bound follows the
// rounding-error model ε·n·‖E(p)‖·‖E(q)‖ with ~10⁴× headroom over
// machine epsilon; with calibrated scales the smallest genuine margins
// (one hash slot, one cent of a scaled price) sit several orders of
// magnitude above it.
func (s *Scheme) Tolerance(pointNorm, queryNorm float64) float64 {
	return toleranceFor(s.n, pointNorm, queryNorm)
}

// EncodeSubscription builds the complete registration-side form of one
// normalised subscription: encrypted query vectors plus the DEBS'12
// Bloom pre-filter over its equality constraints. This is what the
// publisher ships to an untrusted ASPE store.
func (s *Scheme) EncodeSubscription(sub *pubsub.Subscription) (*EncodedSubscription, error) {
	vecs, qNorm, err := s.QueryVectors(sub)
	if err != nil {
		return nil, err
	}
	filter, hasEq := subscriptionFilter(sub.Constraints)
	return &EncodedSubscription{
		Dim:     s.n,
		Vectors: vecs,
		QNorm:   qNorm,
		Filter:  filter,
		HasEq:   hasEq,
	}, nil
}

// EncodePublication builds the complete publication-side form of one
// event: the encrypted point plus its Bloom filter.
func (s *Scheme) EncodePublication(ev *pubsub.Event) (*EncodedPublication, error) {
	point, err := s.EncryptPoint(ev)
	if err != nil {
		return nil, err
	}
	return &EncodedPublication{Dim: s.n, Point: point, Filter: publicationFilter(ev)}, nil
}

// PointNorm exposes the ciphertext norm of an encrypted point.
func PointNorm(p []float64) float64 { return norm2(p) }

func norm2(v []float64) float64 {
	sum := 0.0
	for _, x := range v {
		sum += x * x
	}
	return math.Sqrt(sum)
}
