package aspe

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"scbr/internal/pubsub"
	"scbr/internal/simmem"
)

func TestMatrixInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 5, 24, 90} {
		m := NewRandomInvertible(rng, n)
		inv, err := m.Inverse()
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// M · M⁻¹ ≈ I.
		v := make([]float64, n)
		tmp := make([]float64, n)
		out := make([]float64, n)
		for trial := 0; trial < 5; trial++ {
			for i := range v {
				v[i] = rng.Float64()*2 - 1
			}
			inv.MulVec(tmp, v)
			m.MulVec(out, tmp)
			for i := range v {
				if math.Abs(out[i]-v[i]) > 1e-8 {
					t.Fatalf("n=%d: M·M⁻¹·v deviates at %d: %g vs %g", n, i, out[i], v[i])
				}
			}
		}
	}
}

func TestMatrixSingularRejected(t *testing.T) {
	m := NewMatrix(3) // all zeros
	if _, err := m.Inverse(); err == nil {
		t.Fatal("singular matrix inverted")
	}
}

func TestTMulVecAgainstMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 7
	m := NewRandomInvertible(rng, n)
	// Build Mᵀ explicitly and compare.
	mt := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			mt.Set(i, j, m.At(j, i))
		}
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64()
	}
	a := make([]float64, n)
	b := make([]float64, n)
	m.TMulVec(a, v)
	mt.MulVec(b, v)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatalf("TMulVec mismatch at %d", i)
		}
	}
}

func TestScalarProductPreservation(t *testing.T) {
	// The defining ASPE property: E(p)·E(q) == p̂·q̂ up to float noise.
	rng := rand.New(rand.NewSource(3))
	n := 24
	m := NewRandomInvertible(rng, n)
	inv, err := m.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		p := make([]float64, n)
		q := make([]float64, n)
		for i := range p {
			p[i] = rng.Float64()*200 - 100
			q[i] = rng.Float64()*2 - 1
		}
		ep := make([]float64, n)
		eq := make([]float64, n)
		m.TMulVec(ep, p)
		inv.MulVec(eq, q)
		want := Dot(p, q)
		got := Dot(ep, eq)
		if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
			t.Fatalf("scalar product not preserved: %g vs %g", got, want)
		}
	}
}

// buildUniverse interns a fixed attribute set.
func buildUniverse(t *testing.T, names ...string) (*pubsub.Schema, []pubsub.AttrID) {
	t.Helper()
	schema := pubsub.NewSchema()
	ids := make([]pubsub.AttrID, 0, len(names))
	for _, n := range names {
		id, err := schema.Intern(n)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	return schema, ids
}

func newTestMatcher(t *testing.T, prefilter bool) (*pubsub.Schema, *Matcher) {
	t.Helper()
	schema, ids := buildUniverse(t, "symbol", "price", "volume", "open", "close")
	scheme, err := NewScheme(schema, ids, 99)
	if err != nil {
		t.Fatal(err)
	}
	acc := simmem.NewPlainAccessor(simmem.DefaultCost())
	return schema, NewMatcher(scheme, acc, Options{Prefilter: prefilter})
}

// closedMatches evaluates a subscription against an event under ASPE's
// closed-bound semantics (strict bounds relaxed to inclusive).
func closedMatches(sub *pubsub.Subscription, ev *pubsub.Event) bool {
	for _, c := range sub.Constraints {
		v, ok := ev.Get(c.ID)
		if !ok {
			return false
		}
		if c.Str {
			if v.Kind != pubsub.KindString || v.S != c.EqS {
				return false
			}
			continue
		}
		if !v.Numeric() {
			return false
		}
		f := v.AsFloat()
		if c.HasLo && f < c.Lo {
			return false
		}
		if c.HasHi && f > c.Hi {
			return false
		}
	}
	return true
}

func randomASPESpec(rng *rand.Rand) pubsub.SubscriptionSpec {
	symbols := []string{"HAL", "IBM", "MSFT"}
	numAttrs := []string{"price", "volume", "open", "close"}
	var preds []pubsub.Predicate
	if rng.Intn(3) > 0 {
		preds = append(preds, pubsub.Predicate{
			Attr: "symbol", Op: pubsub.OpEq, Value: pubsub.Str(symbols[rng.Intn(len(symbols))]),
		})
	}
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		attr := numAttrs[rng.Intn(len(numAttrs))]
		lo := float64(rng.Intn(100))
		switch rng.Intn(4) {
		case 0:
			preds = append(preds, pubsub.Predicate{Attr: attr, Op: pubsub.OpLe, Value: pubsub.Float(lo)})
		case 1:
			preds = append(preds, pubsub.Predicate{Attr: attr, Op: pubsub.OpGe, Value: pubsub.Float(lo)})
		case 2:
			preds = append(preds, pubsub.Predicate{Attr: attr, Op: pubsub.OpBetween, Value: pubsub.Float(lo), Hi: pubsub.Float(lo + float64(rng.Intn(50)))})
		default:
			preds = append(preds, pubsub.Predicate{Attr: attr, Op: pubsub.OpEq, Value: pubsub.Float(lo)})
		}
	}
	if len(preds) == 0 {
		preds = append(preds, pubsub.Predicate{Attr: "price", Op: pubsub.OpGe, Value: pubsub.Float(0)})
	}
	return pubsub.SubscriptionSpec{Predicates: preds}
}

func randomASPEEvent(t *testing.T, rng *rand.Rand, schema *pubsub.Schema) *pubsub.Event {
	t.Helper()
	symbols := []string{"HAL", "IBM", "MSFT"}
	attrs := map[string]pubsub.Value{
		"symbol": pubsub.Str(symbols[rng.Intn(len(symbols))]),
		"price":  pubsub.Float(float64(rng.Intn(150))),
		"volume": pubsub.Float(float64(rng.Intn(150))),
		"open":   pubsub.Float(float64(rng.Intn(150))),
		"close":  pubsub.Float(float64(rng.Intn(150))),
	}
	if rng.Intn(4) == 0 {
		delete(attrs, "volume")
	}
	ev, err := pubsub.NewEvent(schema, attrs)
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

// TestASPEEquivalentToClosedSemantics is the scheme's correctness
// property: encrypted matching returns exactly the closed-bound
// plaintext result.
func TestASPEEquivalentToClosedSemantics(t *testing.T) {
	for _, prefilter := range []bool{false, true} {
		schema, matcher := newTestMatcher(t, prefilter)
		rng := rand.New(rand.NewSource(5))
		subs := make(map[uint64]*pubsub.Subscription)
		for i := 0; i < 400; i++ {
			sub, err := pubsub.Normalize(schema, randomASPESpec(rng))
			if err != nil {
				continue
			}
			id, err := matcher.Register(sub)
			if err != nil {
				t.Fatal(err)
			}
			subs[id] = sub
		}
		for i := 0; i < 200; i++ {
			ev := randomASPEEvent(t, rng, schema)
			got, err := matcher.Match(ev)
			if err != nil {
				t.Fatal(err)
			}
			var want []uint64
			for id, sub := range subs {
				if closedMatches(sub, ev) {
					want = append(want, id)
				}
			}
			sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
			sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
			if len(got) != len(want) {
				t.Fatalf("prefilter=%v event %d: ASPE %d matches, plaintext %d", prefilter, i, len(got), len(want))
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("prefilter=%v event %d: ASPE %v != plaintext %v", prefilter, i, got, want)
				}
			}
		}
	}
}

func TestBloomNoFalseNegatives(t *testing.T) {
	// Whatever the filter says "skip" must truly not match. Compare
	// prefiltered and unprefiltered matchers on identical inputs.
	schemaA, plain := newTestMatcher(t, false)
	_, filtered := newTestMatcher(t, true)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 300; i++ {
		sub, err := pubsub.Normalize(schemaA, randomASPESpec(rng))
		if err != nil {
			continue
		}
		if _, err := plain.Register(sub); err != nil {
			t.Fatal(err)
		}
		if _, err := filtered.Register(sub); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		ev := randomASPEEvent(t, rng, schemaA)
		a, err := plain.Match(ev)
		if err != nil {
			t.Fatal(err)
		}
		b, err := filtered.Match(ev)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("event %d: prefilter dropped matches: %d vs %d", i, len(b), len(a))
		}
	}
}

func TestPrefilterReducesWork(t *testing.T) {
	schema, plain := newTestMatcher(t, false)
	_, filtered := newTestMatcher(t, true)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		spec := pubsub.SubscriptionSpec{Predicates: []pubsub.Predicate{
			{Attr: "symbol", Op: pubsub.OpEq, Value: pubsub.Str([]string{"HAL", "IBM", "MSFT"}[rng.Intn(3)])},
			{Attr: "price", Op: pubsub.OpLe, Value: pubsub.Float(float64(rng.Intn(100)))},
		}}
		sub, err := pubsub.Normalize(schema, spec)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := plain.Register(sub); err != nil {
			t.Fatal(err)
		}
		if _, err := filtered.Register(sub); err != nil {
			t.Fatal(err)
		}
	}
	ev := randomASPEEvent(t, rng, schema)
	beforePlain := plain.Meter().C
	if _, err := plain.Match(ev); err != nil {
		t.Fatal(err)
	}
	costPlain := plain.Meter().C.Sub(beforePlain).Cycles
	beforeFiltered := filtered.Meter().C
	if _, err := filtered.Match(ev); err != nil {
		t.Fatal(err)
	}
	costFiltered := filtered.Meter().C.Sub(beforeFiltered).Cycles
	// With only a handful of dimensions the saving is modest (the
	// unfiltered scan already fails fast on the equality product); the
	// prefilter must still be a clear win.
	if float64(costFiltered) > 0.8*float64(costPlain) {
		t.Fatalf("prefilter did not pay off: %d vs %d cycles", costFiltered, costPlain)
	}
}

func TestSchemeValidation(t *testing.T) {
	schema, ids := buildUniverse(t, "a", "b")
	if _, err := NewScheme(schema, nil, 1); err == nil {
		t.Fatal("empty universe accepted")
	}
	if _, err := NewScheme(schema, []pubsub.AttrID{ids[0], ids[0]}, 1); err == nil {
		t.Fatal("duplicate attribute accepted")
	}
	scheme, err := NewScheme(schema, ids, 1)
	if err != nil {
		t.Fatal(err)
	}
	if scheme.Dim() != 2*2+2 || scheme.NumAttrs() != 2 {
		t.Fatalf("dims wrong: %d, %d", scheme.Dim(), scheme.NumAttrs())
	}
	// Attributes outside the universe are rejected.
	outsideID, err := schema.Intern("outside")
	if err != nil {
		t.Fatal(err)
	}
	ev := &pubsub.Event{Attrs: []pubsub.EventAttr{{ID: outsideID, Value: pubsub.Float(1)}}}
	if _, err := scheme.EncryptPoint(ev); err == nil {
		t.Fatal("out-of-universe event accepted")
	}
	sub := &pubsub.Subscription{Constraints: []pubsub.Constraint{{ID: outsideID, HasLo: true, Lo: 1}}}
	if _, _, err := scheme.QueryVectors(sub); err == nil {
		t.Fatal("out-of-universe subscription accepted")
	}
}

func TestCiphertextsDifferFromPlain(t *testing.T) {
	// Sanity: the stored vectors are not the plaintext encodings
	// (queries include a random positive scale and M⁻¹).
	schema, ids := buildUniverse(t, "x")
	scheme, err := NewScheme(schema, ids, 42)
	if err != nil {
		t.Fatal(err)
	}
	sub := &pubsub.Subscription{Constraints: []pubsub.Constraint{{ID: ids[0], HasLo: true, Lo: 5}}}
	v1, _, err := scheme.QueryVectors(sub)
	if err != nil {
		t.Fatal(err)
	}
	v2, _, err := scheme.QueryVectors(sub)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range v1[0] {
		if v1[0][i] != v2[0][i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two encryptions of the same query are identical (no randomisation)")
	}
}

func TestMatchEncryptedDimensionCheck(t *testing.T) {
	_, matcher := newTestMatcher(t, false)
	var f Bloom
	if _, err := matcher.MatchEncrypted(make([]float64, 3), &f); err == nil {
		t.Fatal("wrong-dimension point accepted")
	}
}
