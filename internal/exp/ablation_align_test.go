package exp

import "testing"

func TestAblationCacheAlignShape(t *testing.T) {
	rows, err := AblationCacheAlign(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	if rows[0].Aligned || !rows[1].Aligned {
		t.Fatalf("row order wrong: %+v", rows)
	}
	for _, r := range rows {
		if r.OutMicros <= 0 || r.InMicros <= 0 {
			t.Fatalf("non-positive timing: %+v", r)
		}
		if r.FootprintMB <= 0 {
			t.Fatalf("no footprint recorded: %+v", r)
		}
	}
	// Alignment pads records, so the aligned store must be larger.
	if rows[1].FootprintMB <= rows[0].FootprintMB {
		t.Errorf("aligned footprint %.2f MB not larger than unaligned %.2f MB",
			rows[1].FootprintMB, rows[0].FootprintMB)
	}
	// The layouts must stay within the same order of magnitude — the
	// ablation decides which wins, but a 10× swing would indicate a
	// harness bug, not a layout effect.
	ratio := rows[1].OutMicros / rows[0].OutMicros
	if ratio < 0.1 || ratio > 10 {
		t.Errorf("implausible aligned/unaligned ratio %.2f: %+v", ratio, rows)
	}
}
