package exp

import (
	"fmt"

	"scbr/internal/core"
	"scbr/internal/pubsub"
	"scbr/internal/scheme"
	"scbr/internal/scrypto"
	"scbr/internal/sgx"
	"scbr/internal/workload"
)

// CliffWindow is one registration window of a paging-cliff sweep.
type CliffWindow struct {
	// Subs is the cumulative subscription count after the window.
	Subs int
	// DBMB is the slice store size in MB after the window.
	DBMB float64
	// MicrosPerSub is the window's simulated registration cost per
	// subscription.
	MicrosPerSub float64
	// Faults and Writebacks are the split cache's user-level unseals
	// and dirty seals during the window — zero until the working set
	// crosses the budget.
	Faults     uint64
	Writebacks uint64
}

// CliffResult locates one scheme's paging cliff: the subscription
// volume at which its slice store outgrows its EPC budget and
// registration starts paying seal/unseal traffic. This is the per-slice
// limit the deployment planner (internal/deploy) sizes partition counts
// to stay under; the cliff position divided by the budget is the
// scheme's realised bytes-per-subscription, the quantity the footprint
// model predicts.
type CliffResult struct {
	Scheme   string
	EPCBytes uint64
	// CliffSubs and CliffDBMB are the cumulative subscriptions and
	// store size at the end of the first window that paged.
	CliffSubs int
	CliffDBMB float64
	// PreMicrosPerSub and PostMicrosPerSub average the per-subscription
	// registration cost over the windows before and from the cliff;
	// Ratio is their quotient (the Fig. 8 collapse).
	PreMicrosPerSub  float64
	PostMicrosPerSub float64
	Ratio            float64
	Windows          []CliffWindow
}

// PagingCliff sweeps one scheme's slice over split memory until it
// pages: a single slice is built over an enclave's split-memory
// accessor with plaintext budget cfg.EPCBytes, workload e80a1
// subscriptions are encoded with the scheme's codec and registered in
// fixed windows (one simulated ecall per window, as the Figure 8
// methodology), and the cliff is the first window whose split cache
// sealed or unsealed anything. Everything — corpus, codec secrets,
// split-cache behaviour, the simulated clock — is seeded and
// deterministic: the same Config yields byte-identical results, so
// cliff positions can be committed and gated in CI.
func PagingCliff(cfg Config, schemeName string, maxSubs, step int) (*CliffResult, error) {
	if maxSubs <= 0 || step <= 0 || step > maxSubs {
		return nil, fmt.Errorf("exp: invalid cliff parameters %d/%d", maxSubs, step)
	}
	qs, err := workload.NewQuoteSet(cfg.Seed, cfg.NumSymbols, cfg.PerSymbol)
	if err != nil {
		return nil, err
	}
	spec, err := workload.SpecByName("e80a1")
	if err != nil {
		return nil, err
	}
	gen, err := workload.NewGenerator(spec, qs, cfg.Seed+1100)
	if err != nil {
		return nil, err
	}
	backend, err := scheme.Lookup(schemeName)
	if err != nil {
		return nil, err
	}
	universe := workload.QuoteAttrs(spec.AttrFactor)
	codec, err := scheme.NewCodec(schemeName, scheme.WithAttrs(universe...), scheme.WithSeed(cfg.Seed+11))
	if err != nil {
		return nil, err
	}
	params, err := codec.Params()
	if err != nil {
		return nil, err
	}

	dev, err := sgx.NewDevice([]byte("exp-cliff-device-"+backend.Name), cfg.Cost)
	if err != nil {
		return nil, err
	}
	signer, err := scrypto.NewKeyPair(nil)
	if err != nil {
		return nil, err
	}
	enclave, err := dev.Launch([]byte("scbr paging-cliff slice"), signer.Public(),
		sgx.EnclaveConfig{EPCBytes: cfg.EPCBytes})
	if err != nil {
		return nil, err
	}
	acc, err := enclave.SplitMemory(cfg.EPCBytes)
	if err != nil {
		return nil, err
	}
	slice, err := backend.NewSlice(acc, pubsub.NewSchema(), core.Options{PadRecordTo: cfg.PadRecordTo})
	if err != nil {
		return nil, err
	}
	// scbr:vet ignore(enclavemeter): cliff harness drives the slice directly and models ecall cost itself — setup happens before the measured windows
	if err := slice.Configure(params); err != nil {
		return nil, err
	}

	res := &CliffResult{Scheme: backend.Name, EPCBytes: cfg.EPCBytes}
	meter := acc.Meter()
	cliffIdx := -1
	for done := 0; done < maxSubs; done += step {
		before := meter.C
		// One ecall delivers the whole window, as registerBulk does for
		// the hardware-paged Figure 8 run.
		meter.ChargeTransition()
		for i, sub := range gen.Subscriptions(step) {
			enc, err := codec.EncodeSubscription(sub)
			if err != nil {
				return nil, fmt.Errorf("exp: encoding cliff subscription %d: %w", done+i, err)
			}
			// scbr:vet ignore(enclavemeter): the window charges one bulk transition via meter.ChargeTransition above, mirroring registerBulk's single ecall; wrapping each call would double-charge
			if _, err := slice.RegisterEncoded(enc, uint32(done+i)); err != nil {
				return nil, fmt.Errorf("exp: registering cliff subscription %d: %w", done+i, err)
			}
		}
		delta := meter.C.Sub(before)
		w := CliffWindow{
			Subs:         done + step,
			DBMB:         float64(slice.Stats().Bytes) / (1 << 20),
			MicrosPerSub: cfg.Cost.Micros(delta.Cycles) / float64(step),
			Faults:       delta.UserFaults,
			Writebacks:   delta.UserWritebacks,
		}
		if cliffIdx < 0 && w.Faults+w.Writebacks > 0 {
			cliffIdx = len(res.Windows)
		}
		res.Windows = append(res.Windows, w)
	}
	if cliffIdx < 0 {
		return nil, fmt.Errorf("exp: %s never outgrew its %d-byte budget within %d subscriptions — raise the sweep ceiling or shrink the budget",
			backend.Name, cfg.EPCBytes, maxSubs)
	}
	if cliffIdx == 0 {
		return nil, fmt.Errorf("exp: %s paged in the first window — budget %d is too small for window size %d",
			backend.Name, cfg.EPCBytes, step)
	}
	res.CliffSubs = res.Windows[cliffIdx].Subs
	res.CliffDBMB = res.Windows[cliffIdx].DBMB
	var pre, post float64
	for i, w := range res.Windows {
		if i < cliffIdx {
			pre += w.MicrosPerSub
		} else {
			post += w.MicrosPerSub
		}
	}
	res.PreMicrosPerSub = pre / float64(cliffIdx)
	res.PostMicrosPerSub = post / float64(len(res.Windows)-cliffIdx)
	res.Ratio = res.PostMicrosPerSub / res.PreMicrosPerSub
	return res, nil
}
