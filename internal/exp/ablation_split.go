package exp

import (
	"fmt"

	"scbr/internal/core"
	"scbr/internal/pubsub"
	"scbr/internal/scrypto"
	"scbr/internal/sgx"
	"scbr/internal/workload"
)

// SplitRow is one x-position of the split-memory ablation: the Figure 8
// registration sweep run a third time with the §6 "enclaved and
// external parts" configuration, where the enclave seals cold pages to
// untrusted memory at user level instead of taking hardware EPC
// faults. Both in-enclave runs hold the same plaintext budget
// (cfg.EPCBytes); past that budget the hardware path pays ~7 µs per
// fault (AEX + kernel + EWB/ELD) while the split path pays one
// in-enclave AES-GCM unseal, plus a seal only for dirty victims.
type SplitRow struct {
	Subs int
	// DBMB is the subscription-store size in MB (x-axis, as Fig. 8).
	DBMB float64
	// OutMicros, EPCMicros and SplitMicros are per-subscription
	// registration costs of the window for the three configurations.
	OutMicros   float64
	EPCMicros   float64
	SplitMicros float64
	// EPCRatio and SplitRatio are the in/out time ratios (Fig. 8 left
	// axis; the paper's hardware path reaches ~18×).
	EPCRatio   float64
	SplitRatio float64
	// EPCFaults are hardware paging events in the window; SplitFaults
	// and SplitWritebacks are user-level unseals and dirty seals.
	EPCFaults       uint64
	SplitFaults     uint64
	SplitWritebacks uint64
}

// AblationSplit reruns the Figure 8 registration experiment with the
// split-memory engine alongside the hardware-paged and outside
// baselines. All three engines ingest the identical subscription
// stream (workload e80a1, plaintext, bulk windows).
func AblationSplit(cfg Config) ([]SplitRow, error) {
	rt, err := newRuntime(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Fig8Subs <= 0 || cfg.Fig8Step <= 0 || cfg.Fig8Step > cfg.Fig8Subs {
		return nil, fmt.Errorf("exp: invalid split-ablation parameters %d/%d", cfg.Fig8Subs, cfg.Fig8Step)
	}
	spec, err := workload.SpecByName("e80a1")
	if err != nil {
		return nil, err
	}
	genOut, err := workload.NewGenerator(spec, rt.qs, cfg.Seed+900)
	if err != nil {
		return nil, err
	}
	genEPC, err := workload.NewGenerator(spec, rt.qs, cfg.Seed+900)
	if err != nil {
		return nil, err
	}
	genSplit, err := workload.NewGenerator(spec, rt.qs, cfg.Seed+900)
	if err != nil {
		return nil, err
	}

	outRun, err := newEngineRun(cfg, outPlain, cfg.Seed+6)
	if err != nil {
		return nil, err
	}
	epcRun, err := newEngineRun(cfg, inPlain, cfg.Seed+7)
	if err != nil {
		return nil, err
	}
	splitEngine, splitAcc, err := newSplitEngine(cfg)
	if err != nil {
		return nil, err
	}

	rows := make([]SplitRow, 0, cfg.Fig8Subs/cfg.Fig8Step)
	for done := 0; done < cfg.Fig8Subs; done += cfg.Fig8Step {
		outBatch := genOut.Subscriptions(cfg.Fig8Step)
		epcBatch := genEPC.Subscriptions(cfg.Fig8Step)
		splitBatch := genSplit.Subscriptions(cfg.Fig8Step)

		outMeter := outRun.engine.Accessor().Meter()
		outBefore := outMeter.C
		if err := outRun.registerBulk(outBatch); err != nil {
			return nil, err
		}
		outDelta := outMeter.C.Sub(outBefore)

		epcMeter := epcRun.engine.Accessor().Meter()
		epcBefore := epcMeter.C
		if err := epcRun.registerBulk(epcBatch); err != nil {
			return nil, err
		}
		epcDelta := epcMeter.C.Sub(epcBefore)

		splitMeter := splitAcc.Meter()
		splitBefore := splitMeter.C
		// One ecall delivers the whole window, as registerBulk does for
		// the hardware-paged run.
		splitMeter.ChargeTransition()
		for i, s := range splitBatch {
			if _, err := splitEngine.Register(s, uint32(i)); err != nil {
				return nil, fmt.Errorf("exp: split registration: %w", err)
			}
		}
		splitDelta := splitMeter.C.Sub(splitBefore)

		row := SplitRow{
			Subs:            done + cfg.Fig8Step,
			DBMB:            float64(splitEngine.Accessor().Size()) / (1 << 20),
			OutMicros:       cfg.Cost.Micros(outDelta.Cycles) / float64(cfg.Fig8Step),
			EPCMicros:       cfg.Cost.Micros(epcDelta.Cycles) / float64(cfg.Fig8Step),
			SplitMicros:     cfg.Cost.Micros(splitDelta.Cycles) / float64(cfg.Fig8Step),
			EPCFaults:       epcDelta.PageFaults,
			SplitFaults:     splitDelta.UserFaults,
			SplitWritebacks: splitDelta.UserWritebacks,
		}
		row.EPCRatio = row.EPCMicros / row.OutMicros
		row.SplitRatio = row.SplitMicros / row.OutMicros
		rows = append(rows, row)
	}
	return rows, nil
}

// newSplitEngine launches an enclave and builds an engine over its
// split-memory accessor with the in-enclave plaintext budget set to
// the configured EPC size, so the hardware-paged and split runs spill
// at the same database size.
func newSplitEngine(cfg Config) (*core.Engine, *sgx.SplitAccessor, error) {
	dev, err := sgx.NewDevice([]byte("exp-split-device"), cfg.Cost)
	if err != nil {
		return nil, nil, err
	}
	signer, err := scrypto.NewKeyPair(nil)
	if err != nil {
		return nil, nil, err
	}
	enclave, err := dev.Launch([]byte("scbr split-memory engine"), signer.Public(),
		sgx.EnclaveConfig{EPCBytes: cfg.EPCBytes})
	if err != nil {
		return nil, nil, err
	}
	acc, err := enclave.SplitMemory(cfg.EPCBytes)
	if err != nil {
		return nil, nil, err
	}
	engine, err := core.NewEngine(acc, pubsub.NewSchema(), core.Options{PadRecordTo: cfg.PadRecordTo})
	if err != nil {
		return nil, nil, err
	}
	return engine, acc, nil
}
