package exp

import (
	"reflect"
	"testing"

	"scbr/internal/scheme"
)

// TestPagingCliffOrdering runs both schemes' cliff sweeps under one
// small budget and checks the paper's ordering: ASPE's ciphertext store
// costs ~5× more bytes per subscription than the padded plaintext
// store, so its cliff arrives several times earlier, and both schemes
// register strictly slower once paging.
func TestPagingCliffOrdering(t *testing.T) {
	cfg := smallConfig()
	plain, err := PagingCliff(cfg, scheme.Plain, 4_000, 100)
	if err != nil {
		t.Fatal(err)
	}
	aspe, err := PagingCliff(cfg, scheme.ASPE, 4_000, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range []*CliffResult{plain, aspe} {
		t.Logf("%s: cliff at %d subs (%.2f MB), %.2f → %.2f µs/sub (×%.1f)",
			res.Scheme, res.CliffSubs, res.CliffDBMB,
			res.PreMicrosPerSub, res.PostMicrosPerSub, res.Ratio)
		if res.CliffSubs <= 0 || res.CliffDBMB <= 0 {
			t.Fatalf("%s: degenerate cliff %+v", res.Scheme, res)
		}
		if res.Ratio <= 1 {
			t.Errorf("%s: registration did not slow past the cliff (ratio %.2f)", res.Scheme, res.Ratio)
		}
		// The store at the cliff must be at least the budget — the cliff
		// is crossing it.
		if budgetMB := float64(cfg.EPCBytes) / (1 << 20); res.CliffDBMB < budgetMB*0.8 {
			t.Errorf("%s: cliff store %.2f MB far under the %.2f MB budget", res.Scheme, res.CliffDBMB, budgetMB)
		}
	}
	if plain.CliffSubs < 3*aspe.CliffSubs {
		t.Errorf("aspe cliff at %d subs, plain at %d — want aspe at least 3× earlier",
			aspe.CliffSubs, plain.CliffSubs)
	}
}

// TestPagingCliffDeterministic pins the property the CI gate depends
// on: the same Config yields identical results, window for window.
func TestPagingCliffDeterministic(t *testing.T) {
	cfg := smallConfig()
	a, err := PagingCliff(cfg, scheme.Plain, 3_000, 200)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PagingCliff(cfg, scheme.Plain, 3_000, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical sweeps diverged:\n%+v\n%+v", a, b)
	}
}

func TestPagingCliffValidation(t *testing.T) {
	cfg := smallConfig()
	if _, err := PagingCliff(cfg, scheme.Plain, 0, 100); err == nil {
		t.Error("zero maxSubs accepted")
	}
	if _, err := PagingCliff(cfg, scheme.Plain, 100, 200); err == nil {
		t.Error("step > maxSubs accepted")
	}
	if _, err := PagingCliff(cfg, "no-such-scheme", 1_000, 100); err == nil {
		t.Error("unknown scheme accepted")
	}
	// A budget the sweep never reaches must fail loudly, not report a
	// phantom cliff.
	big := cfg
	big.EPCBytes = 1 << 30
	if _, err := PagingCliff(big, scheme.Plain, 1_000, 100); err == nil {
		t.Error("no-cliff sweep did not error")
	}
}
