package exp

import (
	"fmt"

	"scbr/internal/pubsub"
	"scbr/internal/scrypto"
	"scbr/internal/workload"
)

// BatchRow is one point of the ecall-batching ablation: the paper's
// future-work proposal to "reduce the frequency of enclave
// enters/exits (e.g. ... using message batching)". Batch publications
// per enclave transition and the EENTER/EEXIT cost amortises.
type BatchRow struct {
	BatchSize int
	// Micros is the simulated matching time per publication, including
	// the amortised transition and AES costs.
	Micros float64
	// TransitionShare is the fraction of cycles spent in transitions.
	TransitionShare float64
}

// AblationBatching measures in-enclave AES matching on e100a1 at the
// largest configured size with varying publications per ecall.
func AblationBatching(cfg Config, batchSizes []int) ([]BatchRow, error) {
	rt, err := newRuntime(cfg)
	if err != nil {
		return nil, err
	}
	if len(batchSizes) == 0 {
		return nil, fmt.Errorf("exp: no batch sizes")
	}
	spec, err := workload.SpecByName("e100a1")
	if err != nil {
		return nil, err
	}
	subGen, err := workload.NewGenerator(spec, rt.qs, cfg.Seed+600)
	if err != nil {
		return nil, err
	}
	pubGen, err := workload.NewGenerator(spec, rt.qs, cfg.Seed+700)
	if err != nil {
		return nil, err
	}
	size := cfg.Sizes[len(cfg.Sizes)-1]
	pubs := pubGen.Publications(cfg.PubBatch)

	run, err := newEngineRun(cfg, inAES, cfg.Seed+5)
	if err != nil {
		return nil, err
	}
	if err := run.register(subGen.Subscriptions(size)); err != nil {
		return nil, err
	}
	headers := make([][]byte, 0, len(pubs))
	for _, p := range pubs {
		raw, err := pubsub.EncodeEventSpec(p)
		if err != nil {
			return nil, err
		}
		enc, err := scrypto.Seal(run.sk, raw)
		if err != nil {
			return nil, err
		}
		headers = append(headers, enc)
	}

	rows := make([]BatchRow, 0, len(batchSizes))
	for _, batch := range batchSizes {
		if batch <= 0 {
			return nil, fmt.Errorf("exp: invalid batch size %d", batch)
		}
		meter := run.engine.Accessor().Meter()
		before := meter.C
		for start := 0; start < len(headers); start += batch {
			end := start + batch
			if end > len(headers) {
				end = len(headers)
			}
			chunk := headers[start:end]
			err := run.enclave.Ecall(func() error {
				for _, header := range chunk {
					meter.ChargeAES(len(header))
					raw, err := scrypto.Open(run.sk, header)
					if err != nil {
						return err
					}
					hspec, err := pubsub.DecodeEventSpec(raw)
					if err != nil {
						return err
					}
					ev, err := hspec.Intern(run.engine.Schema())
					if err != nil {
						return err
					}
					if run.scratch, err = run.engine.MatchAppend(ev, run.scratch[:0]); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		}
		delta := meter.C.Sub(before)
		transitionCycles := delta.Transitions * cfg.Cost.EnclaveTransitionCycles
		rows = append(rows, BatchRow{
			BatchSize:       batch,
			Micros:          cfg.Cost.Micros(delta.Cycles) / float64(len(headers)),
			TransitionShare: float64(transitionCycles) / float64(delta.Cycles),
		})
	}
	return rows, nil
}
