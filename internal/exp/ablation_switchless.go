package exp

import (
	"fmt"

	"scbr/internal/pubsub"
	"scbr/internal/scrypto"
	"scbr/internal/sgx"
	"scbr/internal/workload"
)

// SwitchlessRow is one configuration of the enclave-border ablation:
// how publications reach the in-enclave matcher. The paper's §6 lists
// both remedies for transition overhead — "message batching" and
// "implementing message exchanges at the enclave border" — and this
// ablation measures them side by side on the same engine.
type SwitchlessRow struct {
	// Mode is "ecall/1", "ecall/10", "ecall/100" (publications per
	// enclave transition) or "switchless" (untrusted-memory ring, one
	// transition total).
	Mode string
	// Micros is the simulated matching time per publication including
	// delivery overhead (transitions or ring polls) and AES.
	Micros float64
	// TransitionShare is the fraction of cycles spent in EENTER/EEXIT.
	TransitionShare float64
	// Transitions is the absolute number of enclave round trips used
	// to deliver the whole batch.
	Transitions uint64
}

// AblationSwitchless measures in-enclave AES matching on e100a1 at the
// largest configured size, delivering the publication batch through
// per-message ecalls, batched ecalls, and the switchless ring.
func AblationSwitchless(cfg Config) ([]SwitchlessRow, error) {
	rt, err := newRuntime(cfg)
	if err != nil {
		return nil, err
	}
	spec, err := workload.SpecByName("e100a1")
	if err != nil {
		return nil, err
	}
	subGen, err := workload.NewGenerator(spec, rt.qs, cfg.Seed+600)
	if err != nil {
		return nil, err
	}
	pubGen, err := workload.NewGenerator(spec, rt.qs, cfg.Seed+700)
	if err != nil {
		return nil, err
	}
	size := cfg.Sizes[len(cfg.Sizes)-1]
	pubs := pubGen.Publications(cfg.PubBatch)

	run, err := newEngineRun(cfg, inAES, cfg.Seed+8)
	if err != nil {
		return nil, err
	}
	if err := run.register(subGen.Subscriptions(size)); err != nil {
		return nil, err
	}
	headers := make([][]byte, 0, len(pubs))
	for _, p := range pubs {
		raw, err := pubsub.EncodeEventSpec(p)
		if err != nil {
			return nil, err
		}
		enc, err := scrypto.Seal(run.sk, raw)
		if err != nil {
			return nil, err
		}
		headers = append(headers, enc)
	}

	// handle decrypts and matches one header inside the enclave — the
	// identical work item in every delivery mode.
	meter := run.engine.Accessor().Meter()
	handle := func(header []byte) error {
		meter.ChargeAES(len(header))
		raw, err := scrypto.Open(run.sk, header)
		if err != nil {
			return err
		}
		hspec, err := pubsub.DecodeEventSpec(raw)
		if err != nil {
			return err
		}
		ev, err := hspec.Intern(run.engine.Schema())
		if err != nil {
			return err
		}
		run.scratch, err = run.engine.MatchAppend(ev, run.scratch[:0])
		return err
	}

	var rows []SwitchlessRow
	for _, batch := range []int{1, 10, 100} {
		before := meter.C
		for start := 0; start < len(headers); start += batch {
			end := min(start+batch, len(headers))
			chunk := headers[start:end]
			err := run.enclave.Ecall(func() error {
				for _, h := range chunk {
					if err := handle(h); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		}
		delta := meter.C.Sub(before)
		rows = append(rows, SwitchlessRow{
			Mode:            fmt.Sprintf("ecall/%d", batch),
			Micros:          cfg.Cost.Micros(delta.Cycles) / float64(len(headers)),
			TransitionShare: float64(delta.Transitions*cfg.Cost.EnclaveTransitionCycles) / float64(delta.Cycles),
			Transitions:     delta.Transitions,
		})
	}

	// Switchless: the host pushes ciphertext into the ring; the worker
	// entered once and consumes until close.
	ring, err := sgx.NewRing(64)
	if err != nil {
		return nil, err
	}
	pushErr := make(chan error, 1)
	go func() {
		defer ring.Close()
		for _, h := range headers {
			if err := ring.Push(h); err != nil {
				pushErr <- err
				return
			}
		}
		pushErr <- nil
	}()
	before := meter.C
	if err := run.enclave.ServeRing(ring, handle); err != nil {
		return nil, err
	}
	if err := <-pushErr; err != nil {
		return nil, err
	}
	delta := meter.C.Sub(before)
	rows = append(rows, SwitchlessRow{
		Mode:            "switchless",
		Micros:          cfg.Cost.Micros(delta.Cycles) / float64(len(headers)),
		TransitionShare: float64(delta.Transitions*cfg.Cost.EnclaveTransitionCycles) / float64(delta.Cycles),
		Transitions:     delta.Transitions,
	})
	return rows, nil
}
