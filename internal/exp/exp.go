// Package exp drives the reproduction of the paper's evaluation: one
// entry point per figure/table, each returning typed rows that
// cmd/scbr-bench prints and bench_test.go asserts shapes on.
//
// Methodology (matching §4): the subscription database is populated
// incrementally to each target size; at every size a batch of
// publications is matched and the average simulated matching time per
// operation is reported. "Inside" configurations run the identical
// engine code against enclave memory (MEE charges on LLC misses, EPC
// paging, ecall transitions); "outside" configurations run it against
// plain memory. AES configurations really encrypt headers at the
// producer and decrypt them in the filter; plain configurations feed
// pre-decoded events.
//
// Deviation note (also in EXPERIMENTS.md): this engine shards its
// containment forests by equality value, so equality-heavy workloads
// match substantially faster in absolute terms than the paper's
// root-scanning engine. Relative orderings, cache/EPC knees, in/out
// ratios, and the ASPE gap — the shapes the paper argues from — are
// preserved.
package exp

import (
	"fmt"

	"scbr/internal/core"
	"scbr/internal/pubsub"
	"scbr/internal/scrypto"
	"scbr/internal/sgx"
	"scbr/internal/simmem"
	"scbr/internal/workload"
)

// Config parameterises all experiments.
type Config struct {
	// Corpus sizing (defaults reproduce the paper's ≈250 k entries).
	Seed       int64
	NumSymbols int
	PerSymbol  int

	// Sizes are the subscription database sizes measured (Figures
	// 5–7).
	Sizes []int
	// PubBatch is the number of publications matched per measurement
	// (the paper uses 1 000).
	PubBatch int
	// ASPEPubBudget caps subscription×publication work per ASPE
	// measurement so wall-clock time stays bounded; the harness uses
	// min(PubBatch, max(5, ASPEPubBudget/subs)) publications.
	ASPEPubBudget int

	// PadRecordTo sizes engine records; ~400 bytes reproduces the
	// paper's ≈437 B/subscription footprint including subscriber
	// records.
	PadRecordTo int
	// CacheAlign rounds records to cache-line multiples (the §6
	// "fitting into cache lines" layout; see the cache-alignment
	// ablation).
	CacheAlign bool

	// EPCBytes bounds the enclave page cache for "inside" runs.
	EPCBytes uint64

	// Fig8Subs and Fig8Step control the registration experiment
	// (paper: 500 000 subscriptions, one point per 5 000).
	Fig8Subs int
	Fig8Step int

	Cost simmem.CostModel
}

// DefaultConfig returns the paper's parameters.
func DefaultConfig() Config {
	return Config{
		Seed:          1,
		NumSymbols:    workload.DefaultNumSymbols,
		PerSymbol:     workload.DefaultQuotesPerSym,
		Sizes:         []int{1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000},
		PubBatch:      1_000,
		ASPEPubBudget: 3_000_000,
		PadRecordTo:   400,
		EPCBytes:      sgx.DefaultEPCBytes,
		Fig8Subs:      500_000,
		Fig8Step:      5_000,
		Cost:          simmem.DefaultCost(),
	}
}

// runtime bundles the shared corpus.
type runtime struct {
	cfg Config
	qs  *workload.QuoteSet
}

func newRuntime(cfg Config) (*runtime, error) {
	if len(cfg.Sizes) == 0 {
		return nil, fmt.Errorf("exp: no database sizes configured")
	}
	for i := 1; i < len(cfg.Sizes); i++ {
		if cfg.Sizes[i] <= cfg.Sizes[i-1] {
			return nil, fmt.Errorf("exp: sizes must be strictly increasing")
		}
	}
	qs, err := workload.NewQuoteSet(cfg.Seed, cfg.NumSymbols, cfg.PerSymbol)
	if err != nil {
		return nil, err
	}
	return &runtime{cfg: cfg, qs: qs}, nil
}

// engineKind selects one of the four Figure 5 configurations.
type engineKind int

const (
	outPlain engineKind = iota + 1
	outAES
	inPlain
	inAES
)

func (k engineKind) enclave() bool { return k == inPlain || k == inAES }
func (k engineKind) aes() bool     { return k == outAES || k == inAES }

// engineRun is one engine instance under measurement.
type engineRun struct {
	kind    engineKind
	cfg     Config
	engine  *core.Engine
	enclave *sgx.Enclave // nil outside
	sk      *scrypto.SymmetricKey

	// Publication forms: interned events for plain runs, encrypted
	// headers for AES runs.
	events  []*pubsub.Event
	headers [][]byte

	scratch []core.MatchResult
}

// newEngineRun builds an engine in the requested configuration.
func newEngineRun(cfg Config, kind engineKind, seed int64) (*engineRun, error) {
	r := &engineRun{kind: kind, cfg: cfg}
	var acc simmem.Accessor
	if kind.enclave() {
		dev, err := sgx.NewDevice([]byte(fmt.Sprintf("exp-device-%d-%d", kind, seed)), cfg.Cost)
		if err != nil {
			return nil, err
		}
		signer, err := scrypto.NewKeyPair(nil)
		if err != nil {
			return nil, err
		}
		r.enclave, err = dev.Launch([]byte("scbr experiment engine"), signer.Public(), sgx.EnclaveConfig{EPCBytes: cfg.EPCBytes})
		if err != nil {
			return nil, err
		}
		acc = r.enclave.Memory()
	} else {
		acc = simmem.NewPlainAccessor(cfg.Cost)
	}
	engine, err := core.NewEngine(acc, pubsub.NewSchema(), core.Options{PadRecordTo: cfg.PadRecordTo, CacheAlign: cfg.CacheAlign})
	if err != nil {
		return nil, err
	}
	r.engine = engine
	if kind.aes() {
		sk, err := scrypto.NewSymmetricKey(nil)
		if err != nil {
			return nil, err
		}
		r.sk = sk
	}
	return r, nil
}

// register adds subscription specs to the engine, one ecall per
// subscription (the protocol path: each registration arrives as its
// own message).
func (r *engineRun) register(specs []pubsub.SubscriptionSpec) error {
	for i, spec := range specs {
		var err error
		if r.enclave != nil {
			err = r.enclave.Ecall(func() error {
				_, e := r.engine.Register(spec, uint32(i))
				return e
			})
		} else {
			_, err = r.engine.Register(spec, uint32(i))
		}
		if err != nil {
			return fmt.Errorf("exp: registering subscription %d: %w", i, err)
		}
	}
	return nil
}

// registerBulk loads a whole window of subscriptions inside a single
// ecall, isolating the memory-system cost of registration from the
// call-gate cost — the methodology of the paper's Figure 8, which
// instruments the registration code itself.
func (r *engineRun) registerBulk(specs []pubsub.SubscriptionSpec) error {
	if r.enclave == nil {
		return r.register(specs)
	}
	return r.enclave.Ecall(func() error {
		for i, spec := range specs {
			if _, err := r.engine.Register(spec, uint32(i)); err != nil {
				return fmt.Errorf("exp: registering subscription %d: %w", i, err)
			}
		}
		return nil
	})
}

// preparePublications fixes the publication batch in the form the
// configuration consumes.
func (r *engineRun) preparePublications(pubs []pubsub.EventSpec) error {
	if r.kind.aes() {
		r.headers = make([][]byte, 0, len(pubs))
		for _, p := range pubs {
			raw, err := pubsub.EncodeEventSpec(p)
			if err != nil {
				return err
			}
			enc, err := scrypto.Seal(r.sk, raw)
			if err != nil {
				return err
			}
			r.headers = append(r.headers, enc)
		}
		return nil
	}
	r.events = make([]*pubsub.Event, 0, len(pubs))
	for _, p := range pubs {
		ev, err := p.Intern(r.engine.Schema())
		if err != nil {
			return err
		}
		r.events = append(r.events, ev)
	}
	return nil
}

// matchBatch runs the whole batch once and returns the average
// simulated microseconds per matching operation plus the counter
// delta.
func (r *engineRun) matchBatch() (float64, simmem.Counters, error) {
	meter := r.engine.Accessor().Meter()
	before := meter.C
	n := 0
	if r.kind.aes() {
		for _, header := range r.headers {
			op := func() error {
				meter.ChargeAES(len(header))
				raw, err := scrypto.Open(r.sk, header)
				if err != nil {
					return err
				}
				spec, err := pubsub.DecodeEventSpec(raw)
				if err != nil {
					return err
				}
				ev, err := spec.Intern(r.engine.Schema())
				if err != nil {
					return err
				}
				r.scratch, err = r.engine.MatchAppend(ev, r.scratch[:0])
				return err
			}
			var err error
			if r.enclave != nil {
				err = r.enclave.Ecall(op)
			} else {
				err = op()
			}
			if err != nil {
				return 0, simmem.Counters{}, err
			}
			n++
		}
	} else {
		for _, ev := range r.events {
			op := func() error {
				var err error
				r.scratch, err = r.engine.MatchAppend(ev, r.scratch[:0])
				return err
			}
			var err error
			if r.enclave != nil {
				err = r.enclave.Ecall(op)
			} else {
				err = op()
			}
			if err != nil {
				return 0, simmem.Counters{}, err
			}
			n++
		}
	}
	delta := meter.C.Sub(before)
	micros := r.cfg.Cost.Micros(delta.Cycles) / float64(n)
	return micros, delta, nil
}
