package exp

import (
	"fmt"

	"scbr/internal/workload"
)

// Fig8Row is one x-position of Figure 8: ratios of in-enclave to
// outside-enclave registration cost as the subscription store grows
// past the EPC limit (workload e80a1, plaintext registration, one
// point per Fig8Step subscriptions).
type Fig8Row struct {
	Subs int
	// DBMB is the in-enclave store size in MB (the x-axis).
	DBMB float64
	// TimeRatio is (in-enclave registration time) / (outside time) for
	// this window of insertions (left axis; reaches ~18× at 213 MB in
	// the paper).
	TimeRatio float64
	// FaultRatio is (EPC page faults inside) / (soft faults outside)
	// for the window (right axis; reaches ~4·10⁴ in the paper).
	// Windows where the outside run faulted zero times use 1 as the
	// denominator.
	FaultRatio float64
	// InMicros and OutMicros are the per-subscription registration
	// costs of the window.
	InMicros  float64
	OutMicros float64
}

// Figure8 reproduces "Loss in performance when exceeding EPC memory
// limit".
func Figure8(cfg Config) ([]Fig8Row, error) {
	rt, err := newRuntime(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Fig8Subs <= 0 || cfg.Fig8Step <= 0 || cfg.Fig8Step > cfg.Fig8Subs {
		return nil, fmt.Errorf("exp: invalid figure 8 parameters %d/%d", cfg.Fig8Subs, cfg.Fig8Step)
	}
	spec, err := workload.SpecByName("e80a1")
	if err != nil {
		return nil, err
	}
	// Both runs must insert the identical subscription stream.
	genIn, err := workload.NewGenerator(spec, rt.qs, cfg.Seed+800)
	if err != nil {
		return nil, err
	}
	genOut, err := workload.NewGenerator(spec, rt.qs, cfg.Seed+800)
	if err != nil {
		return nil, err
	}
	inRun, err := newEngineRun(cfg, inPlain, cfg.Seed+3)
	if err != nil {
		return nil, err
	}
	outRun, err := newEngineRun(cfg, outPlain, cfg.Seed+4)
	if err != nil {
		return nil, err
	}

	rows := make([]Fig8Row, 0, cfg.Fig8Subs/cfg.Fig8Step)
	for done := 0; done < cfg.Fig8Subs; done += cfg.Fig8Step {
		batchIn := genIn.Subscriptions(cfg.Fig8Step)
		batchOut := genOut.Subscriptions(cfg.Fig8Step)

		inMeter := inRun.engine.Accessor().Meter()
		inBefore := inMeter.C
		if err := inRun.registerBulk(batchIn); err != nil {
			return nil, err
		}
		inDelta := inMeter.C.Sub(inBefore)

		outMeter := outRun.engine.Accessor().Meter()
		outBefore := outMeter.C
		if err := outRun.registerBulk(batchOut); err != nil {
			return nil, err
		}
		outDelta := outMeter.C.Sub(outBefore)

		outFaults := outDelta.MinorFaults
		if outFaults == 0 {
			outFaults = 1
		}
		row := Fig8Row{
			Subs:       done + cfg.Fig8Step,
			DBMB:       float64(inRun.engine.Accessor().Size()) / (1 << 20),
			InMicros:   cfg.Cost.Micros(inDelta.Cycles) / float64(cfg.Fig8Step),
			OutMicros:  cfg.Cost.Micros(outDelta.Cycles) / float64(cfg.Fig8Step),
			FaultRatio: float64(inDelta.PageFaults) / float64(outFaults),
		}
		row.TimeRatio = row.InMicros / row.OutMicros
		rows = append(rows, row)
	}
	return rows, nil
}

// Table1Row reports the realised characteristics of one generated
// workload against its Table 1 specification.
type Table1Row struct {
	Name     string
	Spec     workload.Spec
	Mix      workload.Mix
	AvgAttrs float64 // average publication attribute count
	MinAttrs int
	MaxAttrs int
	Samples  int
}

// Table1Stats generates n subscriptions and publications per workload
// and reports the realised proportions — the reproduction of Table 1.
func Table1Stats(cfg Config, n int) ([]Table1Row, error) {
	rt, err := newRuntime(cfg)
	if err != nil {
		return nil, err
	}
	rows := make([]Table1Row, 0, 9)
	for i, spec := range workload.Table1() {
		gen, err := workload.NewGenerator(spec, rt.qs, cfg.Seed+int64(i)*31+900)
		if err != nil {
			return nil, err
		}
		subs := gen.Subscriptions(n)
		row := Table1Row{Name: spec.Name, Spec: spec, Mix: workload.AnalyzeSpecs(subs), Samples: n, MinAttrs: 1 << 30}
		total := 0
		for _, p := range gen.Publications(n / 10) {
			c := len(p.Attrs)
			total += c
			if c < row.MinAttrs {
				row.MinAttrs = c
			}
			if c > row.MaxAttrs {
				row.MaxAttrs = c
			}
		}
		row.AvgAttrs = float64(total) / float64(n/10)
		rows = append(rows, row)
	}
	return rows, nil
}
