package exp

import (
	"fmt"

	"scbr/internal/core"
	"scbr/internal/pubsub"
	"scbr/internal/scrypto"
	"scbr/internal/sgx"
	"scbr/internal/simmem"
	"scbr/internal/streamhub"
	"scbr/internal/workload"
)

// HorizontalRow is one partition count of the horizontal-scalability
// ablation. The paper's conclusion claims the EPC limitation "can be
// overcome through horizontal scalability"; here the same subscription
// stream is partitioned across k enclaves (StreamHub-style, §3.4), so
// a database that pages on one enclave fits k EPCs.
type HorizontalRow struct {
	// Partitions is k, the number of enclave-backed matcher slices.
	Partitions int
	// DBMB is the total store size across slices.
	DBMB float64
	// MicrosPerSub is the mean in-enclave registration cost per
	// subscription, summed over slices (single-machine work; the
	// slices of a real deployment run on separate hosts).
	MicrosPerSub float64
	// MatchMicros is the simulated makespan per publication when the
	// slices match in parallel.
	MatchMicros float64
	// PageFaults counts EPC paging events across all slices.
	PageFaults uint64
}

// AblationHorizontal registers cfg.Fig8Subs subscriptions (workload
// e80a1, padded records, cfg.EPCBytes per enclave) into hubs of
// 1, 2, 4 and 8 enclave slices, then matches a publication batch.
func AblationHorizontal(cfg Config, parts []int) ([]HorizontalRow, error) {
	rt, err := newRuntime(cfg)
	if err != nil {
		return nil, err
	}
	if len(parts) == 0 {
		parts = []int{1, 2, 4, 8}
	}
	spec, err := workload.SpecByName("e80a1")
	if err != nil {
		return nil, err
	}

	rows := make([]HorizontalRow, 0, len(parts))
	for _, k := range parts {
		if k <= 0 {
			return nil, fmt.Errorf("exp: invalid partition count %d", k)
		}
		subGen, err := workload.NewGenerator(spec, rt.qs, cfg.Seed+1200)
		if err != nil {
			return nil, err
		}
		pubGen, err := workload.NewGenerator(spec, rt.qs, cfg.Seed+1300)
		if err != nil {
			return nil, err
		}

		dev, err := sgx.NewDevice([]byte(fmt.Sprintf("exp-horizontal-%d", k)), cfg.Cost)
		if err != nil {
			return nil, err
		}
		signer, err := scrypto.NewKeyPair(nil)
		if err != nil {
			return nil, err
		}
		enclaves := make([]*sgx.Enclave, k)
		schema := pubsub.NewSchema()
		hub, err := streamhub.New(k, schema,
			func(i int, s *pubsub.Schema) (*core.Engine, error) {
				e, err := dev.Launch([]byte(fmt.Sprintf("scbr slice image %d", i)), signer.Public(),
					sgx.EnclaveConfig{EPCBytes: cfg.EPCBytes})
				if err != nil {
					return nil, err
				}
				enclaves[i] = e
				return core.NewEngine(e.Memory(), s, core.Options{PadRecordTo: cfg.PadRecordTo})
			},
			func(i int, fn func() error) error { return enclaves[i].Ecall(fn) })
		if err != nil {
			return nil, err
		}

		// Registration phase: the stream fans across slices.
		var before []simmem.Counters
		for _, e := range enclaves {
			before = append(before, e.Memory().Meter().C)
		}
		for i, s := range subGen.Subscriptions(cfg.Fig8Subs) {
			if _, err := hub.Register(s, uint32(i)); err != nil {
				return nil, fmt.Errorf("exp: horizontal k=%d sub %d: %w", k, i, err)
			}
		}
		row := HorizontalRow{Partitions: k}
		var regCycles uint64
		for i, e := range enclaves {
			delta := e.Memory().Meter().C.Sub(before[i])
			regCycles += delta.Cycles
			row.PageFaults += delta.PageFaults
			row.DBMB += float64(e.Memory().Size()) / (1 << 20)
		}
		row.MicrosPerSub = cfg.Cost.Micros(regCycles) / float64(cfg.Fig8Subs)

		// Matching phase: parallel fan-out, makespan accounting.
		var makespan uint64
		nPubs := cfg.PubBatch
		for _, p := range pubGen.Publications(nPubs) {
			ev, err := p.Intern(schema)
			if err != nil {
				return nil, err
			}
			_, stats, err := hub.Match(ev)
			if err != nil {
				return nil, err
			}
			makespan += stats.MakespanCycles
		}
		row.MatchMicros = cfg.Cost.Micros(makespan) / float64(nPubs)
		rows = append(rows, row)
	}
	return rows, nil
}
