package exp

import (
	"fmt"

	"scbr/internal/workload"
)

// AlignRow is one configuration of the cache-alignment ablation: the
// paper's §6 proposal of "appropriately fitting [the containment
// trees] into cache lines". Rounding records to 64-byte multiples
// stops headers straddling lines (fewer lines touched per record) but
// inflates the footprint (more lines allocated overall); this ablation
// measures which effect wins on the evaluation workload.
type AlignRow struct {
	// Aligned reports whether records were line-aligned.
	Aligned bool
	// OutMicros and InMicros are matching times outside and inside
	// the enclave (plaintext events).
	OutMicros float64
	InMicros  float64
	// OutMissRate is the LLC miss rate of the outside run.
	OutMissRate float64
	// FootprintMB is the subscription-store size.
	FootprintMB float64
}

// AblationCacheAlign measures plaintext matching on e80a1 at the
// largest configured size with and without cache-line-aligned
// records, inside and outside the enclave.
func AblationCacheAlign(cfg Config) ([]AlignRow, error) {
	rt, err := newRuntime(cfg)
	if err != nil {
		return nil, err
	}
	spec, err := workload.SpecByName("e80a1")
	if err != nil {
		return nil, err
	}
	size := cfg.Sizes[len(cfg.Sizes)-1]

	rows := make([]AlignRow, 0, 2)
	for _, aligned := range []bool{false, true} {
		runCfg := cfg
		runCfg.CacheAlign = aligned

		subGen, err := workload.NewGenerator(spec, rt.qs, cfg.Seed+1000)
		if err != nil {
			return nil, err
		}
		pubGen, err := workload.NewGenerator(spec, rt.qs, cfg.Seed+1100)
		if err != nil {
			return nil, err
		}
		pubs := pubGen.Publications(cfg.PubBatch)
		subs := subGen.Subscriptions(size)

		outRun, err := newEngineRun(runCfg, outPlain, cfg.Seed+9)
		if err != nil {
			return nil, err
		}
		inRun, err := newEngineRun(runCfg, inPlain, cfg.Seed+10)
		if err != nil {
			return nil, err
		}
		row := AlignRow{Aligned: aligned}
		for _, r := range []*engineRun{outRun, inRun} {
			if err := r.preparePublications(pubs); err != nil {
				return nil, err
			}
			if err := r.register(subs); err != nil {
				return nil, fmt.Errorf("exp: cache-align registration: %w", err)
			}
		}
		outMicros, outCounters, err := outRun.matchBatch()
		if err != nil {
			return nil, err
		}
		inMicros, _, err := inRun.matchBatch()
		if err != nil {
			return nil, err
		}
		row.OutMicros = outMicros
		row.InMicros = inMicros
		row.OutMissRate = outCounters.MissRate()
		row.FootprintMB = float64(outRun.engine.Accessor().Size()) / (1 << 20)
		rows = append(rows, row)
	}
	return rows, nil
}
