package exp

import "testing"

func TestAblationSwitchlessShape(t *testing.T) {
	rows, err := AblationSwitchless(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	byMode := make(map[string]SwitchlessRow, len(rows))
	for _, r := range rows {
		if r.Micros <= 0 {
			t.Fatalf("non-positive timing: %+v", r)
		}
		byMode[r.Mode] = r
	}
	one, ten, switchless := byMode["ecall/1"], byMode["ecall/10"], byMode["switchless"]
	// Transition accounting: per-message ecalls pay one transition per
	// publication; the ring pays exactly one in total.
	if one.Transitions < ten.Transitions || ten.Transitions <= switchless.Transitions {
		t.Errorf("transition ordering wrong: %+v", rows)
	}
	if switchless.Transitions != 1 {
		t.Errorf("switchless used %d transitions, want 1", switchless.Transitions)
	}
	// The transition share must collapse as delivery amortises.
	if one.TransitionShare <= ten.TransitionShare {
		t.Errorf("batching did not reduce transition share: %+v", rows)
	}
	if switchless.TransitionShare >= one.TransitionShare {
		t.Errorf("switchless share (%f) not below ecall/1 (%f)",
			switchless.TransitionShare, one.TransitionShare)
	}
	// On a small database the transition dominates, so switchless must
	// also win on absolute time.
	if switchless.Micros >= one.Micros {
		t.Errorf("switchless (%f µs) not cheaper than ecall/1 (%f µs)",
			switchless.Micros, one.Micros)
	}
}
