package exp

import (
	"math"
	"testing"

	"scbr/internal/core"
	"scbr/internal/pubsub"
	"scbr/internal/simmem"
	"scbr/internal/workload"
)

// smallConfig keeps harness smoke tests fast: a reduced corpus,
// reduced sizes, and a tiny EPC so the Figure 8 knee appears quickly.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.NumSymbols = 40
	cfg.PerSymbol = 100
	cfg.Sizes = []int{200, 500, 1_000}
	cfg.PubBatch = 50
	cfg.ASPEPubBudget = 50_000
	cfg.Fig8Subs = 8_000
	cfg.Fig8Step = 500
	cfg.EPCBytes = 256 * simmem.PageSize // 1 MB
	return cfg
}

func TestFigure5Shape(t *testing.T) {
	rows, err := Figure5(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.OutPlain <= 0 || r.OutAES <= 0 || r.InPlain <= 0 || r.InAES <= 0 {
			t.Fatalf("non-positive timing: %+v", r)
		}
		// AES adds cost over plain in the same locality.
		if r.OutAES < r.OutPlain {
			t.Errorf("AES outside cheaper than plain: %+v", r)
		}
		if r.InAES < r.InPlain {
			t.Errorf("AES inside cheaper than plain: %+v", r)
		}
		// Enclave execution costs at least the transition overhead.
		if r.InPlain < r.OutPlain {
			t.Errorf("enclave cheaper than plain: %+v", r)
		}
	}
	// Matching time grows with database size.
	if rows[len(rows)-1].OutPlain <= rows[0].OutPlain {
		t.Errorf("no growth with database size: %+v", rows)
	}
}

func TestFigure6Shape(t *testing.T) {
	rows, err := Figure6(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	names := make(map[string]bool)
	for _, spec := range workload.Table1() {
		names[spec.Name] = true
	}
	last := rows[len(rows)-1]
	for name := range names {
		v, ok := last.Micros[name]
		if !ok || v <= 0 || math.IsNaN(v) {
			t.Fatalf("workload %s missing or invalid: %v", name, v)
		}
	}
	// The wide-attribute workloads must be slower than the
	// equality-only original workload (the Figure 6 ordering).
	if last.Micros["e80a4"] <= last.Micros["e100a1"] {
		t.Errorf("e80a4 (%f) not slower than e100a1 (%f)",
			last.Micros["e80a4"], last.Micros["e100a1"])
	}
}

func TestFigure7Shape(t *testing.T) {
	rows, err := Figure7(smallConfig(), "e80a1")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.OutASPE <= 0 || r.InAES <= 0 || r.OutAES <= 0 {
			t.Fatalf("non-positive timing: %+v", r)
		}
		// ASPE must lose to SCBR — the paper's headline comparison.
		if r.OutASPE < r.OutAES {
			t.Errorf("ASPE faster than SCBR at %d subs: %+v", r.Subs, r)
		}
		if r.MissRate < 0 || r.MissRate > 1 {
			t.Fatalf("invalid miss rate: %+v", r)
		}
	}
	// The ASPE gap widens with database size (ASPE grows linearly,
	// SCBR prunes).
	first, last := rows[0], rows[len(rows)-1]
	if last.OutASPE/last.OutAES < first.OutASPE/first.OutAES {
		t.Logf("warning: ASPE gap did not widen (%f→%f)",
			first.OutASPE/first.OutAES, last.OutASPE/last.OutAES)
	}
}

func TestFigure7UnknownWorkload(t *testing.T) {
	if _, err := Figure7(smallConfig(), "bogus"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestFigure8Shape(t *testing.T) {
	cfg := smallConfig()
	rows, err := Figure8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != cfg.Fig8Subs/cfg.Fig8Step {
		t.Fatalf("rows = %d", len(rows))
	}
	// Early windows fit in the EPC: ratio near 1. Late windows page:
	// ratio well above 1, fault ratio large.
	first, last := rows[0], rows[len(rows)-1]
	if first.TimeRatio > 3 {
		t.Errorf("pre-EPC ratio too high: %+v", first)
	}
	if last.TimeRatio < 3 {
		t.Errorf("post-EPC ratio too low: %+v (EPC=%d bytes, DB=%.1f MB)",
			last, cfg.EPCBytes, last.DBMB)
	}
	if last.FaultRatio < 10 {
		t.Errorf("post-EPC fault ratio too low: %+v", last)
	}
	// DB size grows monotonically.
	for i := 1; i < len(rows); i++ {
		if rows[i].DBMB < rows[i-1].DBMB {
			t.Fatalf("DB shrank: %+v -> %+v", rows[i-1], rows[i])
		}
	}
}

func TestTable1Stats(t *testing.T) {
	cfg := smallConfig()
	rows, err := Table1Stats(cfg, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		for _, c := range r.Spec.EqMix {
			got := r.Mix.EqFrac[c.NumEq]
			if math.Abs(got-c.Frac) > 0.05 {
				t.Errorf("%s: realised %d-eq fraction %f, spec %f",
					r.Name, c.NumEq, got, c.Frac)
			}
		}
		wantMin, wantMax := 8*r.Spec.AttrFactor, 11*r.Spec.AttrFactor
		if r.MinAttrs < wantMin || r.MaxAttrs > wantMax {
			t.Errorf("%s: attrs %d–%d outside %d–%d", r.Name, r.MinAttrs, r.MaxAttrs, wantMin, wantMax)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := smallConfig()
	cfg.Sizes = nil
	if _, err := Figure5(cfg); err == nil {
		t.Fatal("empty sizes accepted")
	}
	cfg = smallConfig()
	cfg.Sizes = []int{100, 100}
	if _, err := Figure5(cfg); err == nil {
		t.Fatal("non-increasing sizes accepted")
	}
	cfg = smallConfig()
	cfg.Fig8Step = 0
	if _, err := Figure8(cfg); err == nil {
		t.Fatal("zero step accepted")
	}
}

func TestAblationBatching(t *testing.T) {
	cfg := smallConfig()
	rows, err := AblationBatching(cfg, []int{1, 10, 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Larger batches amortise the transition cost: per-op time and the
	// transition share both fall monotonically.
	for i := 1; i < len(rows); i++ {
		if rows[i].Micros >= rows[i-1].Micros {
			t.Errorf("batch %d not cheaper than %d: %f vs %f",
				rows[i].BatchSize, rows[i-1].BatchSize, rows[i].Micros, rows[i-1].Micros)
		}
		if rows[i].TransitionShare >= rows[i-1].TransitionShare {
			t.Errorf("transition share did not fall: %+v", rows)
		}
	}
	if _, err := AblationBatching(cfg, nil); err == nil {
		t.Fatal("empty batch sizes accepted")
	}
	if _, err := AblationBatching(cfg, []int{0}); err == nil {
		t.Fatal("zero batch size accepted")
	}
}

// TestForestShapesExplainFigure6 validates the paper's explanation of
// the workload ordering: equality-only workloads "form deeper
// containment trees", while ×4-attribute workloads "yield indexes with
// more roots and shallow trees" (§4). Both engines run un-sharded so
// root counts are comparable to the paper's.
func TestForestShapesExplainFigure6(t *testing.T) {
	cfg := smallConfig()
	rt, err := newRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	build := func(name string) core.ForestShape {
		spec, err := workload.SpecByName(name)
		if err != nil {
			t.Fatal(err)
		}
		gen, err := workload.NewGenerator(spec, rt.qs, cfg.Seed)
		if err != nil {
			t.Fatal(err)
		}
		engine, err := core.NewEngine(simmem.NewPlainAccessor(cfg.Cost), pubsub.NewSchema(),
			core.Options{DisableSharding: true})
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range gen.Subscriptions(3000) {
			if _, err := engine.Register(s, uint32(i)); err != nil {
				t.Fatal(err)
			}
		}
		return engine.Shape()
	}
	deep := build("e100a1")
	shallow := build("e80a4")
	if deep.MaxDepth <= shallow.MaxDepth {
		t.Errorf("e100a1 depth %d not deeper than e80a4 depth %d", deep.MaxDepth, shallow.MaxDepth)
	}
	if shallow.Roots <= deep.Roots {
		t.Errorf("e80a4 roots %d not more numerous than e100a1 roots %d", shallow.Roots, deep.Roots)
	}
	t.Logf("e100a1: roots=%d maxDepth=%d; e80a4: roots=%d maxDepth=%d",
		deep.Roots, deep.MaxDepth, shallow.Roots, shallow.MaxDepth)
}
