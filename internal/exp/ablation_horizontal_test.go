package exp

import "testing"

func TestAblationHorizontalShape(t *testing.T) {
	cfg := smallConfig()
	// Size the store at ~4× one slice's EPC so k=1 pages heavily and
	// k=4 does not.
	rows, err := AblationHorizontal(cfg, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	one, four := rows[0], rows[1]
	if one.Partitions != 1 || four.Partitions != 4 {
		t.Fatalf("partition order wrong: %+v", rows)
	}
	// Partitioning must eliminate (or at least decimate) paging.
	if one.PageFaults == 0 {
		t.Fatalf("k=1 never paged (DB %.1f MB); ablation vacuous", one.DBMB)
	}
	if four.PageFaults*10 > one.PageFaults {
		t.Errorf("k=4 faults %d not ≪ k=1 faults %d", four.PageFaults, one.PageFaults)
	}
	// Registration gets cheaper per subscription when nothing pages.
	if four.MicrosPerSub >= one.MicrosPerSub {
		t.Errorf("k=4 registration (%f µs) not cheaper than k=1 (%f µs)",
			four.MicrosPerSub, one.MicrosPerSub)
	}
	// Parallel matching makespan must not degrade.
	if four.MatchMicros > one.MatchMicros*1.5 {
		t.Errorf("k=4 match makespan %f µs much worse than k=1 %f µs",
			four.MatchMicros, one.MatchMicros)
	}
}

func TestAblationHorizontalValidation(t *testing.T) {
	cfg := smallConfig()
	if _, err := AblationHorizontal(cfg, []int{0}); err == nil {
		t.Fatal("zero partitions accepted")
	}
}
