package exp

import (
	"fmt"

	"scbr/internal/core"
	"scbr/internal/pubsub"
	"scbr/internal/scheme"
	"scbr/internal/simmem"
	"scbr/internal/workload"
)

// Fig5Row is one x-position of Figure 5: the four configurations'
// matching time at a database size (workload e100a1).
type Fig5Row struct {
	Subs     int
	InAES    float64 // µs per matching operation
	InPlain  float64
	OutAES   float64
	OutPlain float64
}

// Figure5 reproduces "Overhead of encryption and enclave".
func Figure5(cfg Config) ([]Fig5Row, error) {
	rt, err := newRuntime(cfg)
	if err != nil {
		return nil, err
	}
	spec, err := workload.SpecByName("e100a1")
	if err != nil {
		return nil, err
	}
	subGen, err := workload.NewGenerator(spec, rt.qs, cfg.Seed+100)
	if err != nil {
		return nil, err
	}
	pubGen, err := workload.NewGenerator(spec, rt.qs, cfg.Seed+200)
	if err != nil {
		return nil, err
	}
	pubs := pubGen.Publications(cfg.PubBatch)

	kinds := []engineKind{inAES, inPlain, outAES, outPlain}
	runs := make(map[engineKind]*engineRun, len(kinds))
	for _, k := range kinds {
		run, err := newEngineRun(cfg, k, cfg.Seed)
		if err != nil {
			return nil, err
		}
		if err := run.preparePublications(pubs); err != nil {
			return nil, err
		}
		runs[k] = run
	}

	rows := make([]Fig5Row, 0, len(cfg.Sizes))
	registered := 0
	for _, size := range cfg.Sizes {
		batch := subGen.Subscriptions(size - registered)
		registered = size
		row := Fig5Row{Subs: size}
		for _, k := range kinds {
			if err := runs[k].register(batch); err != nil {
				return nil, err
			}
			micros, _, err := runs[k].matchBatch()
			if err != nil {
				return nil, err
			}
			switch k {
			case inAES:
				row.InAES = micros
			case inPlain:
				row.InPlain = micros
			case outAES:
				row.OutAES = micros
			case outPlain:
				row.OutPlain = micros
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig6Row is one x-position of Figure 6: per-workload plaintext
// matching time outside enclaves.
type Fig6Row struct {
	Subs   int
	Micros map[string]float64 // workload name → µs/op
}

// Figure6 reproduces "Performance of the containment-based algorithm
// applied to the different workloads in plaintext, outside enclaves".
func Figure6(cfg Config) ([]Fig6Row, error) {
	rt, err := newRuntime(cfg)
	if err != nil {
		return nil, err
	}
	type wl struct {
		name string
		gen  *workload.Generator
		run  *engineRun
	}
	var wls []wl
	for i, spec := range workload.Table1() {
		subGen, err := workload.NewGenerator(spec, rt.qs, cfg.Seed+int64(i)*17+100)
		if err != nil {
			return nil, err
		}
		pubGen, err := workload.NewGenerator(spec, rt.qs, cfg.Seed+int64(i)*17+200)
		if err != nil {
			return nil, err
		}
		run, err := newEngineRun(cfg, outPlain, cfg.Seed+int64(i))
		if err != nil {
			return nil, err
		}
		if err := run.preparePublications(pubGen.Publications(cfg.PubBatch)); err != nil {
			return nil, err
		}
		wls = append(wls, wl{name: spec.Name, gen: subGen, run: run})
	}
	rows := make([]Fig6Row, 0, len(cfg.Sizes))
	registered := 0
	for _, size := range cfg.Sizes {
		row := Fig6Row{Subs: size, Micros: make(map[string]float64, len(wls))}
		for _, w := range wls {
			if err := w.run.register(w.gen.Subscriptions(size - registered)); err != nil {
				return nil, err
			}
			micros, _, err := w.run.matchBatch()
			if err != nil {
				return nil, err
			}
			row.Micros[w.name] = micros
		}
		registered = size
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig7Row is one x-position of one Figure 7 panel.
type Fig7Row struct {
	Subs     int
	OutASPE  float64
	InAES    float64
	OutAES   float64
	MissRate float64 // LLC miss rate of the Out AES run
}

// Figure7 reproduces one panel of "Comparison of different approaches
// with varying workloads" for the named workload.
func Figure7(cfg Config, name string) ([]Fig7Row, error) {
	rt, err := newRuntime(cfg)
	if err != nil {
		return nil, err
	}
	spec, err := workload.SpecByName(name)
	if err != nil {
		return nil, err
	}
	subGen, err := workload.NewGenerator(spec, rt.qs, cfg.Seed+300)
	if err != nil {
		return nil, err
	}
	pubGen, err := workload.NewGenerator(spec, rt.qs, cfg.Seed+400)
	if err != nil {
		return nil, err
	}
	pubs := pubGen.Publications(cfg.PubBatch)

	inRun, err := newEngineRun(cfg, inAES, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	outRun, err := newEngineRun(cfg, outAES, cfg.Seed+2)
	if err != nil {
		return nil, err
	}
	for _, r := range []*engineRun{inRun, outRun} {
		if err := r.preparePublications(pubs); err != nil {
			return nil, err
		}
	}

	// ASPE setup: fixed attribute universe over the workload's merged
	// arity, scales calibrated from a publication sample.
	aspeMatcher, aspeEvents, err := buildASPE(cfg, spec, rt, pubs)
	if err != nil {
		return nil, err
	}
	subSpecs := func(n int) ([]pubsub.SubscriptionSpec, error) {
		return subGen.Subscriptions(n), nil
	}

	rows := make([]Fig7Row, 0, len(cfg.Sizes))
	registered := 0
	for _, size := range cfg.Sizes {
		batch, err := subSpecs(size - registered)
		if err != nil {
			return nil, err
		}
		registered = size
		if err := inRun.register(batch); err != nil {
			return nil, err
		}
		if err := outRun.register(batch); err != nil {
			return nil, err
		}
		if err := aspeMatcher.register(batch); err != nil {
			return nil, err
		}
		row := Fig7Row{Subs: size}
		if row.InAES, _, err = inRun.matchBatch(); err != nil {
			return nil, err
		}
		var delta simmem.Counters
		if row.OutAES, delta, err = outRun.matchBatch(); err != nil {
			return nil, err
		}
		row.MissRate = delta.MissRate()
		if row.OutASPE, err = aspeMatcher.matchBatch(cfg, size, aspeEvents); err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Figure7All runs every panel.
func Figure7All(cfg Config) (map[string][]Fig7Row, error) {
	out := make(map[string][]Fig7Row, 9)
	for _, spec := range workload.Table1() {
		rows, err := Figure7(cfg, spec.Name)
		if err != nil {
			return nil, fmt.Errorf("exp: figure 7 %s: %w", spec.Name, err)
		}
		out[spec.Name] = rows
	}
	return out, nil
}

// aspeRun drives the ASPE baseline through the pluggable scheme API —
// the publisher-side codec encodes, the router-side slice stores and
// matches, exactly the two halves the live broker deploys.
type aspeRun struct {
	codec scheme.Codec
	slice scheme.Slice

	scratch []core.MatchResult
}

// buildASPE builds the scheme backend over the union of attribute
// names the workload can produce and pre-encrypts the publication
// batch into its wire blobs.
func buildASPE(cfg Config, spec workload.Spec, rt *runtime, pubs []pubsub.EventSpec) (*aspeRun, [][]byte, error) {
	names := workload.QuoteAttrs(spec.AttrFactor)
	sample := pubs
	if len(sample) > 200 {
		sample = sample[:200]
	}
	codec, err := scheme.NewCodec(scheme.ASPE,
		scheme.WithAttrs(names...),
		scheme.WithSeed(cfg.Seed+500),
		scheme.WithCalibration(sample...))
	if err != nil {
		return nil, nil, err
	}
	backend, err := scheme.Lookup(scheme.ASPE)
	if err != nil {
		return nil, nil, err
	}
	slice, err := backend.NewSlice(simmem.NewPlainAccessor(cfg.Cost), pubsub.NewSchema(), core.Options{})
	if err != nil {
		return nil, nil, err
	}
	params, err := codec.Params()
	if err != nil {
		return nil, nil, err
	}
	// scbr:vet ignore(enclavemeter): ASPE comparison slice lives in plain untrusted memory — matching on ciphertext outside the enclave is the scheme's selling point, there is no boundary to meter
	if err := slice.Configure(params); err != nil {
		return nil, nil, err
	}
	blobs := make([][]byte, 0, len(pubs))
	for _, p := range pubs {
		blob, encErr := codec.EncodeEvent(p)
		if encErr != nil {
			return nil, nil, encErr
		}
		blobs = append(blobs, blob)
	}
	return &aspeRun{codec: codec, slice: slice}, blobs, nil
}

func (a *aspeRun) register(specs []pubsub.SubscriptionSpec) error {
	for _, s := range specs {
		enc, err := a.codec.EncodeSubscription(s)
		if err != nil {
			return err
		}
		// scbr:vet ignore(enclavemeter): same plain-memory ASPE slice; registrations happen outside any enclave by design
		if _, err := a.slice.RegisterEncoded(enc, 0); err != nil {
			return err
		}
	}
	return nil
}

// matchBatch measures only the matching step (points pre-encrypted,
// as in the paper: "we measured only the matching step, and not the
// encryption or decryption of ASPE messages").
func (a *aspeRun) matchBatch(cfg Config, size int, blobs [][]byte) (float64, error) {
	nPubs := cfg.PubBatch
	if budget := cfg.ASPEPubBudget / max(size, 1); budget < nPubs {
		nPubs = max(5, budget)
	}
	if nPubs > len(blobs) {
		nPubs = len(blobs)
	}
	meter := a.slice.Accessor().Meter()
	before := meter.C
	for _, blob := range blobs[:nPubs] {
		var err error
		// scbr:vet ignore(enclavemeter): the measured quantity IS the unmetered plain-memory match cost (paper: "only the matching step")
		if a.scratch, err = a.slice.MatchEncoded(blob, a.scratch[:0]); err != nil {
			return 0, err
		}
	}
	delta := meter.C.Sub(before)
	return cfg.Cost.Micros(delta.Cycles) / float64(nPubs), nil
}
