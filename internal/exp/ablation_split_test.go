package exp

import "testing"

func TestAblationSplitShape(t *testing.T) {
	cfg := smallConfig()
	rows, err := AblationSplit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != cfg.Fig8Subs/cfg.Fig8Step {
		t.Fatalf("rows = %d", len(rows))
	}
	first, last := rows[0], rows[len(rows)-1]
	// Pre-spill, both in-enclave configurations track the outside run.
	if first.EPCRatio > 3 || first.SplitRatio > 3 {
		t.Errorf("pre-spill ratios too high: %+v", first)
	}
	// Post-spill, hardware paging must hurt and the split engine must
	// hurt strictly less — the point of the §6 optimisation.
	if last.EPCRatio < 3 {
		t.Errorf("post-spill EPC ratio too low (no knee reached): %+v", last)
	}
	if last.SplitRatio >= last.EPCRatio {
		t.Errorf("split paging not cheaper than hardware paging: split %.2f× vs EPC %.2f×",
			last.SplitRatio, last.EPCRatio)
	}
	if last.SplitFaults == 0 {
		t.Error("split engine spilled nothing; ablation is vacuous")
	}
	if last.EPCFaults == 0 {
		t.Error("hardware run spilled nothing; ablation is vacuous")
	}
	// Clean evictions skip resealing, so writebacks must not exceed
	// faults by more than the dirty share allows.
	if last.SplitWritebacks > last.SplitFaults*2 {
		t.Errorf("writebacks (%d) implausibly exceed faults (%d)",
			last.SplitWritebacks, last.SplitFaults)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].DBMB < rows[i-1].DBMB {
			t.Fatalf("DB shrank: %+v -> %+v", rows[i-1], rows[i])
		}
	}
}

func TestAblationSplitValidation(t *testing.T) {
	cfg := smallConfig()
	cfg.Fig8Step = 0
	if _, err := AblationSplit(cfg); err == nil {
		t.Fatal("invalid step accepted")
	}
	cfg = smallConfig()
	cfg.Fig8Step = cfg.Fig8Subs + 1
	if _, err := AblationSplit(cfg); err == nil {
		t.Fatal("step larger than total accepted")
	}
}
