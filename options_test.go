package scbr_test

import (
	"context"
	"net"
	"testing"
	"time"

	"scbr"
)

// TestRouterOptionApplication checks that functional options reach the
// launched enclave and engine.
func TestRouterOptionApplication(t *testing.T) {
	dev, err := scbr.NewDevice([]byte("opts-dev"))
	if err != nil {
		t.Fatal(err)
	}
	quoter, err := scbr.NewQuoter(dev, "opts-platform")
	if err != nil {
		t.Fatal(err)
	}
	signer, err := scbr.NewKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	router, err := scbr.NewRouter(dev, quoter, []byte("opts image"), signer.Public(),
		scbr.WithEPC(8<<20), scbr.WithSwitchless(), scbr.WithRingCapacity(512), scbr.WithPadding(400))
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	if got := router.Enclave().Config().EPCBytes; got != 8<<20 {
		t.Fatalf("EPCBytes = %d, want %d", got, 8<<20)
	}

	// Default options launch with the paper's EPC.
	router2, err := scbr.NewRouter(dev, quoter, []byte("opts image 2"), signer.Public())
	if err != nil {
		t.Fatal(err)
	}
	defer router2.Close()
	if got := router2.Enclave().Config().EPCBytes; got != uint64(scbr.DefaultEPCBytes) {
		t.Fatalf("default EPCBytes = %d, want %d", got, uint64(scbr.DefaultEPCBytes))
	}
}

// TestEngineOptionApplication checks that padding and ISV options are
// observable on the constructed artefacts.
func TestEngineOptionApplication(t *testing.T) {
	spec, err := scbr.ParseSpec("price < 50")
	if err != nil {
		t.Fatal(err)
	}
	slim, err := scbr.NewPlainEngine()
	if err != nil {
		t.Fatal(err)
	}
	padded, err := scbr.NewPlainEngine(scbr.WithPadding(2048))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []*scbr.Engine{slim, padded} {
		if _, err := e.Register(spec, 1); err != nil {
			t.Fatal(err)
		}
	}
	if slimB, padB := slim.Stats().Bytes, padded.Stats().Bytes; padB <= slimB {
		t.Fatalf("WithPadding not applied: %d <= %d bytes", padB, slimB)
	}

	dev, err := scbr.NewDevice([]byte("engine-opts"))
	if err != nil {
		t.Fatal(err)
	}
	_, enclave, err := scbr.NewEnclaveEngine(dev, scbr.WithEPC(4<<20), scbr.WithISV(7, 3), scbr.WithDebugEnclave())
	if err != nil {
		t.Fatal(err)
	}
	cfg := enclave.Config()
	if cfg.EPCBytes != 4<<20 || cfg.ISVProdID != 7 || cfg.ISVSVN != 3 || !cfg.Debug {
		t.Fatalf("enclave config = %+v", cfg)
	}
}

// TestFederationOptions federates two routers through the public
// option surface and checks the attested link comes up and is
// reported on the federation snapshot.
func TestFederationOptions(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	signer, err := scbr.NewKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	svc := scbr.NewAttestationService()
	image := []byte("fed options image")

	newNode := func(name, platform string, peers ...string) (*scbr.Router, string) {
		t.Helper()
		dev, err := scbr.NewDevice(nil)
		if err != nil {
			t.Fatal(err)
		}
		quoter, err := scbr.NewQuoter(dev, platform)
		if err != nil {
			t.Fatal(err)
		}
		svc.RegisterPlatform(quoter.PlatformID(), quoter.AttestationKey())
		opts := []scbr.Option{
			scbr.WithRouterID(name),
			scbr.WithPeerVerifier(svc),
			scbr.WithFederationTTL(4),
			scbr.WithDrainTimeout(time.Second),
		}
		if len(peers) > 0 {
			opts = append(opts, scbr.WithPeers(peers...))
		}
		router, err := scbr.NewRouter(dev, quoter, image, signer.Public(), opts...)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(router.Close)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go func() { _ = router.Serve(ctx, ln) }()
		return router, ln.Addr().String()
	}

	a, addrA := newNode("fed-a", "fed-platform-a")
	b, _ := newNode("fed-b", "fed-platform-b", addrA)

	deadline := time.Now().Add(10 * time.Second)
	for a.FederationSnapshot().Peers < 1 || b.FederationSnapshot().Peers < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("peer link never came up: a=%+v b=%+v",
				a.FederationSnapshot(), b.FederationSnapshot())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDeprecatedRouterShim keeps the positional-config constructor
// working for old callers.
func TestDeprecatedRouterShim(t *testing.T) {
	dev, err := scbr.NewDevice([]byte("shim-dev"))
	if err != nil {
		t.Fatal(err)
	}
	quoter, err := scbr.NewQuoter(dev, "shim-platform")
	if err != nil {
		t.Fatal(err)
	}
	signer, err := scbr.NewKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	router, err := scbr.NewRouterFromConfig(dev, quoter, scbr.RouterConfig{
		EnclaveImage:  []byte("shim image"),
		EnclaveSigner: signer.Public(),
		EPCBytes:      2 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	if got := router.Enclave().Config().EPCBytes; got != 2<<20 {
		t.Fatalf("EPCBytes = %d", got)
	}
	// Equivalent option form measures identically (same image, same
	// config → same MRENCLAVE).
	twin, err := scbr.NewRouter(dev, quoter, []byte("shim image"), signer.Public(), scbr.WithEPC(2<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer twin.Close()
	if router.Identity().MRENCLAVE != twin.Identity().MRENCLAVE {
		t.Fatal("option form and config form measure differently")
	}
}
