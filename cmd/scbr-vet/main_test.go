package main

import (
	"bytes"
	"os"
	"testing"

	"scbr/internal/analysis"
)

// TestTreeIsClean is the smoke test behind the CI gate: the full
// analyzer suite over ./... must report nothing — every real finding
// is either fixed or carries a justified suppression. A failure here
// prints the findings exactly as `go run ./cmd/scbr-vet ./...` would.
func TestTreeIsClean(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := analysis.ModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	n, err := analysis.Vet(root, []string{"./..."}, suite, &out)
	if err != nil {
		t.Fatalf("vet: %v", err)
	}
	if n != 0 {
		t.Fatalf("scbr-vet reports %d finding(s) on the tree:\n%s", n, out.String())
	}
}
