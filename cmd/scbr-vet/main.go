// Command scbr-vet is the repository's invariant checker: a
// multichecker over the five custom analyzers in internal/analysis
// (lockorder, enclavemeter, pooledframe, ctxblock, wireerr), run in
// CI on every PR and locally with
//
//	go run ./cmd/scbr-vet ./...
//
// It exits 0 when the tree is clean, 1 when any analyzer reports a
// finding, and 2 on a load failure (a package that does not build).
// Findings are silenced only by a justified suppression comment —
// `// scbr:vet ignore(<analyzer>): reason` — documented in
// docs/analysis.md.
package main

import (
	"flag"
	"fmt"
	"os"

	"scbr/internal/analysis"
	"scbr/internal/analysis/ctxblock"
	"scbr/internal/analysis/enclavemeter"
	"scbr/internal/analysis/lockorder"
	"scbr/internal/analysis/pooledframe"
	"scbr/internal/analysis/wireerr"
)

// Suite is the full analyzer suite, in documentation order.
var suite = []*analysis.Analyzer{
	lockorder.Analyzer,
	enclavemeter.Analyzer,
	pooledframe.Analyzer,
	ctxblock.Analyzer,
	wireerr.Analyzer,
}

func main() {
	listFlag := flag.Bool("list", false, "list the analyzers and exit")
	only := flag.String("only", "", "run only this analyzer (by name)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: scbr-vet [-list] [-only analyzer] [packages]\n\nAnalyzers:\n")
		for _, a := range suite {
			fmt.Fprintf(os.Stderr, "  %-13s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *listFlag {
		for _, a := range suite {
			fmt.Printf("%-13s %s\n", a.Name, a.Doc)
		}
		return
	}
	analyzers := suite
	if *only != "" {
		analyzers = nil
		for _, a := range suite {
			if a.Name == *only {
				analyzers = []*analysis.Analyzer{a}
			}
		}
		if analyzers == nil {
			fmt.Fprintf(os.Stderr, "scbr-vet: unknown analyzer %q\n", *only)
			os.Exit(2)
		}
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "scbr-vet: %v\n", err)
		os.Exit(2)
	}
	root, err := analysis.ModuleRoot(wd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scbr-vet: %v\n", err)
		os.Exit(2)
	}
	n, err := analysis.Vet(root, patterns, analyzers, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scbr-vet: %v\n", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "scbr-vet: %d finding(s)\n", n)
		os.Exit(1)
	}
}
