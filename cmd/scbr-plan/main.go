// Command scbr-plan sizes an SCBR deployment before anything launches:
// it reads a topology spec (JSON), runs the EPC-aware deployment
// planner — partition counts from the scheme's measured footprint
// model, routers packed first-fit-decreasing onto heterogeneous hosts
// — and prints the resulting plan as deterministic JSON (the same
// spec always produces byte-identical output, so plans can be
// committed and diffed).
//
// Usage:
//
//	scbr-plan -spec examples/plans/heterogeneous.json
//	scbr-plan -spec spec.json -check
//
// -check validates feasibility without printing the plan: exit 0 when
// the spec plans cleanly, exit 1 with the reason when it cannot
// (working set over every per-slice EPC share, or a router no host
// can hold).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"scbr/internal/deploy"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "scbr-plan: %v\n", err)
		os.Exit(1)
	}
}

func run(out io.Writer, args []string) error {
	fs := flag.NewFlagSet("scbr-plan", flag.ContinueOnError)
	specPath := fs.String("spec", "", "path to a topology spec (JSON)")
	check := fs.Bool("check", false, "validate feasibility only; print nothing on success")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *specPath == "" {
		return fmt.Errorf("-spec is required")
	}
	plan, err := PlanFile(*specPath)
	if err != nil {
		return err
	}
	if *check {
		fmt.Fprintf(out, "plan ok: %d routers feasible\n", len(plan.Routers))
		return nil
	}
	raw, err := json.MarshalIndent(plan, "", "  ")
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%s\n", raw)
	return nil
}

// PlanFile loads a topology spec and runs the planner on it. Unknown
// spec fields are rejected so typos fail loudly rather than silently
// planning defaults.
func PlanFile(path string) (*deploy.TopologyPlan, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var spec deploy.TopologySpec
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("decoding %s: %w", path, err)
	}
	return deploy.Plan(spec)
}
