package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestPlanGolden pins the plan output for the committed example specs
// byte-for-byte: the planner must be deterministic (same spec, same
// JSON) so plans can be committed, diffed, and gated in CI. Regenerate
// with:
//
//	go run ./cmd/scbr-plan -spec examples/plans/<name>.json > cmd/scbr-plan/testdata/<name>.golden
func TestPlanGolden(t *testing.T) {
	for _, name := range []string{"heterogeneous", "aspe-cell"} {
		t.Run(name, func(t *testing.T) {
			spec := filepath.Join("..", "..", "examples", "plans", name+".json")
			golden := filepath.Join("testdata", name+".golden")
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatal(err)
			}
			// Two runs: both must match the golden exactly, which also
			// proves run-to-run determinism.
			for i := 0; i < 2; i++ {
				var out bytes.Buffer
				if err := run(&out, []string{"-spec", spec}); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(out.Bytes(), want) {
					t.Fatalf("run %d: plan JSON diverges from %s (regenerate if the planner changed intentionally)", i, golden)
				}
			}
		})
	}
}

func TestPlanCheckMode(t *testing.T) {
	spec := filepath.Join("..", "..", "examples", "plans", "aspe-cell.json")
	var out bytes.Buffer
	if err := run(&out, []string{"-spec", spec, "-check"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "plan ok") {
		t.Fatalf("check output: %q", out.String())
	}
}

func TestPlanRejectsUnknownSpecFields(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"routers": 1, "subscrptions": 5}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(new(bytes.Buffer), []string{"-spec", bad}); err == nil ||
		!strings.Contains(err.Error(), "unknown field") {
		t.Fatalf("err = %v, want unknown-field rejection", err)
	}
}
