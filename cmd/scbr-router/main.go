// Command scbr-router runs the SCBR routing engine: it launches the
// (simulated) SGX enclave, writes the trust bundle a publisher needs
// to attest it, and serves registrations, publications, and client
// delivery channels until interrupted.
//
// Usage:
//
//	scbr-router -listen 127.0.0.1:7070 -trust router-trust.json \
//	    [-scheme sgx-plain|aspe] \
//	    [-partitions 4] [-switchless] [-epc 93] [-pad 0] [-delivery-queue 256] \
//	    [-router-id r1 -peer host:port -peer-trust peer-trust.json ...] \
//	    [-metrics-addr 127.0.0.1:7079]
//
// followed by scbr-publisher and scbr-subscriber pointed at it.
//
// Federation: give each router a -router-id and point -peer at the
// routers it should dial; the routers mutually attest and form an
// overlay that forwards publications toward matching downstream
// subscribers. Each -peer-trust file (written by the peer at its own
// startup) teaches this router the peer's platform key and pinned
// enclave identity.
//
// Observability: -metrics-addr serves the enclave meter aggregate,
// per-slice meters, delivery-queue depths, delivery counters,
// enqueue→write delivery-latency percentiles (p50/p95/p99, total and
// per client), federation counters, per-slice EPC footprints (store
// bytes, budget, resident high-water mark) with the planner's
// recommended partition count, and the shard→slice placement
// snapshot as JSON on GET /metrics (expvar-style, poll with curl).
//
// Elasticity: the same address serves the control plane —
//
//	curl -X POST 'http://host:7079/control/repartition?partitions=4'
//
// live-migrates the subscription database onto 4 matcher slices
// (growing or shrinking the enclave fleet online) and returns the new
// placement snapshot; partitions=0 auto-sizes the fleet from the
// measured EPC footprints. -placement-shards/-placement-seed tune the
// placement map.
package main

import (
	"context"
	"crypto/rsa"
	"crypto/x509"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"scbr"
	"scbr/internal/deploy"
	"scbr/internal/simmem"
)

// enclaveImage is the measured router code; publishers pin its
// MRENCLAVE via the trust bundle.
var enclaveImage = []byte("scbr routing engine enclave image v1.0")

// repeatable collects repeated string flags.
type repeatable []string

func (r *repeatable) String() string     { return fmt.Sprint(*r) }
func (r *repeatable) Set(v string) error { *r = append(*r, v); return nil }

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "scbr-router:", err)
		os.Exit(1)
	}
}

func run() error {
	var peers, peerTrust repeatable
	var (
		listen      = flag.String("listen", "127.0.0.1:7070", "address to serve on")
		trust       = flag.String("trust", "router-trust.json", "path to write the trust bundle")
		epcMB       = flag.Uint64("epc", scbr.DefaultEPCBytes>>20, "usable EPC in MB")
		platform    = flag.String("platform", "local-platform", "platform identity for attestation")
		pad         = flag.Int("pad", 0, "engine record padding in bytes")
		schemeName  = flag.String("scheme", scbr.SchemePlain, "matching scheme the slices store and match under (sgx-plain or aspe; must match the publisher's -scheme)")
		partitions  = flag.Int("partitions", 1, "enclave matcher slices to shard the subscription database across")
		placeShards = flag.Int("placement-shards", 0, "virtual shards registrations hash onto, the migration grain for /control/repartition (0 = default 64, max 256)")
		placeSeed   = flag.Int64("placement-seed", 0, "seed for the rendezvous shard→slice hash (0 = fixed built-in seed)")
		switchless  = flag.Bool("switchless", false, "route publications through per-partition untrusted-memory rings")
		queueLen    = flag.Int("delivery-queue", 0, "per-client delivery queue bound (0 = default 256)")
		overflow    = flag.String("overflow", "drop-oldest", "slow-consumer policy when a delivery queue fills: drop-oldest, disconnect, or pause")
		replayRing  = flag.Int("replay-ring", 0, "per-client delivery replay ring bound for cursor resume (0 = default 512, negative = disabled)")
		resumeWin   = flag.Duration("resume-window", 0, "how long a detached client's cursor/ring state is retained for resume (0 = default 5m)")
		drain       = flag.Duration("drain-timeout", 0, "shutdown drain bound for pending deliveries (0 = default 2s)")
		routerID    = flag.String("router-id", "", "overlay name of this router; enables federation")
		fedTTL      = flag.Int("federation-ttl", 0, "hop budget for forwarded publications (0 = default 8)")
		metricsAddr = flag.String("metrics-addr", "", "serve meter/delivery/federation counters as JSON on this address (empty = disabled)")
	)
	flag.Var(&peers, "peer", "peer router address to dial into the federation overlay (repeatable)")
	flag.Var(&peerTrust, "peer-trust", "trust bundle file of a federated peer, for mutual attestation (repeatable)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	dev, err := scbr.NewDevice(nil)
	if err != nil {
		return err
	}
	quoter, err := scbr.NewQuoter(dev, *platform)
	if err != nil {
		return err
	}
	signer, err := scbr.NewKeyPair(nil)
	if err != nil {
		return err
	}
	// Measure the enclave identity with a short-lived probe and publish
	// the trust bundle *before* waiting on peers: a federated fleet
	// starting simultaneously bootstraps by exchanging these files.
	identity, err := measureIdentity(dev, signer, *epcMB<<20, *partitions)
	if err != nil {
		return err
	}
	bundle, err := deploy.NewTrustBundle(quoter, identity)
	if err != nil {
		return err
	}
	if err := bundle.Save(*trust); err != nil {
		return err
	}
	log.Printf("trust bundle written to %s (MRENCLAVE=%x…)", *trust, identity.MRENCLAVE[:8])

	policy, err := scbr.ParseOverflowPolicy(*overflow)
	if err != nil {
		return err
	}
	opts := []scbr.Option{
		scbr.WithScheme(*schemeName),
		scbr.WithEPC(*epcMB << 20),
		scbr.WithPadding(*pad),
		scbr.WithPartitions(*partitions),
		scbr.WithPlacementShards(*placeShards),
		scbr.WithPlacementSeed(*placeSeed),
		scbr.WithDeliveryQueue(*queueLen),
		scbr.WithOverflowPolicy(policy),
		scbr.WithReplayRing(*replayRing),
		scbr.WithResumeWindow(*resumeWin),
		scbr.WithDrainTimeout(*drain),
	}
	if *switchless {
		opts = append(opts, scbr.WithSwitchless())
	}
	if *routerID != "" || len(peers) > 0 {
		fedOpts, err := federationOptions(ctx, quoter, *routerID, peers, peerTrust, *fedTTL)
		if err != nil {
			return err
		}
		opts = append(opts, fedOpts...)
	}
	router, err := scbr.NewRouter(dev, quoter, enclaveImage, signer.Public(), opts...)
	if err != nil {
		return err
	}
	defer router.Close()
	launched := router.Identity()
	log.Printf("enclave launched: MRENCLAVE=%x…", launched.MRENCLAVE[:8])

	if *metricsAddr != "" {
		msrv, err := serveMetrics(*metricsAddr, router)
		if err != nil {
			return err
		}
		defer func() {
			shutdownCtx, cancel := context.WithTimeout(context.Background(), time.Second)
			defer cancel()
			_ = msrv.Shutdown(shutdownCtx)
		}()
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	log.Printf("serving on %s (scheme %s, EPC %d MB, %d partitions, switchless=%v, peers=%d)",
		ln.Addr(), router.Scheme(), *epcMB, *partitions, *switchless, len(peers))

	if err := router.Serve(ctx, ln); err != nil && !errors.Is(err, context.Canceled) {
		return err
	}
	log.Printf("shutting down")
	return nil
}

// measureIdentity launches a throwaway enclave with the router's
// per-slice launch parameters to learn the fleet identity without
// building the router yet.
func measureIdentity(dev *scbr.Device, signer *scbr.KeyPair, epcBytes uint64, partitions int) (scbr.Identity, error) {
	if partitions < 1 {
		partitions = 1
	}
	epcPer := epcBytes / uint64(partitions)
	if epcPer < simmem.PageSize {
		epcPer = simmem.PageSize
	}
	probe, err := dev.Launch(enclaveImage, signer.Public(), scbr.EnclaveConfig{EPCBytes: epcPer})
	if err != nil {
		return scbr.Identity{}, err
	}
	defer probe.Terminate()
	return scbr.Identity{MRENCLAVE: probe.MRENCLAVE(), MRSIGNER: probe.MRSIGNER()}, nil
}

// federationOptions assembles the overlay options: this router's own
// platform plus every peer bundle's platform key feed one shared
// verification service, and each bundle's measurements join the
// pinned identity set peers are checked against. Peer bundles that do
// not exist yet are awaited — peers publish them at their own startup.
func federationOptions(ctx context.Context, quoter *scbr.Quoter, routerID string, peers, peerTrust []string, ttl int) ([]scbr.Option, error) {
	if routerID == "" {
		return nil, fmt.Errorf("federation needs -router-id")
	}
	svc := scbr.NewAttestationService()
	svc.RegisterPlatform(quoter.PlatformID(), quoter.AttestationKey())
	var ids []scbr.Identity
	for _, path := range peerTrust {
		bundle, err := awaitTrustBundle(ctx, path)
		if err != nil {
			return nil, err
		}
		key, err := x509.ParsePKIXPublicKey(bundle.AttestationKey)
		if err != nil {
			return nil, fmt.Errorf("peer trust %s: parsing attestation key: %w", path, err)
		}
		rsaKey, ok := key.(*rsa.PublicKey)
		if !ok {
			return nil, fmt.Errorf("peer trust %s: attestation key is %T, want RSA", path, key)
		}
		svc.RegisterPlatform(bundle.PlatformID, rsaKey)
		var id scbr.Identity
		copy(id.MRENCLAVE[:], bundle.MRENCLAVE)
		copy(id.MRSIGNER[:], bundle.MRSIGNER)
		ids = append(ids, id)
	}
	opts := []scbr.Option{
		scbr.WithRouterID(routerID),
		scbr.WithPeers(peers...),
		scbr.WithPeerVerifier(svc, ids...),
	}
	if ttl > 0 {
		opts = append(opts, scbr.WithFederationTTL(ttl))
	}
	return opts, nil
}

// awaitTrustBundle polls for a peer's bundle file for up to 30s.
func awaitTrustBundle(ctx context.Context, path string) (*deploy.TrustBundle, error) {
	deadline := time.Now().Add(30 * time.Second)
	for {
		bundle, err := deploy.LoadTrustBundle(path)
		if err == nil {
			return bundle, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("peer trust bundle %s never appeared: %w", path, err)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(200 * time.Millisecond):
		}
	}
}

// serveMetrics exposes the router's observability surface as JSON on
// GET /metrics and the elasticity control plane on POST
// /control/repartition. Unknown paths 404, wrong methods 405 with an
// Allow header, and every body — errors included — is JSON.
func serveMetrics(addr string, router *scbr.Router) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		httpError(w, http.StatusNotFound, fmt.Sprintf("no such path %q", r.URL.Path))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			httpError(w, http.StatusMethodNotAllowed, "metrics are read-only: use GET")
			return
		}
		snapshot := struct {
			Meter          scbr.MemoryCounters     `json:"meter"`
			Slices         []scbr.MemoryCounters   `json:"slices"`
			Footprints     []scbr.SliceFootprint   `json:"footprints"`
			Recommended    int                     `json:"recommended_partitions"`
			DataPlane      scbr.DataPlaneStats     `json:"data_plane"`
			Placement      scbr.PlacementSnapshot  `json:"placement"`
			DeliveryQueues map[string]int          `json:"delivery_queues"`
			Delivery       scbr.DeliveryCounters   `json:"delivery"`
			Latency        scbr.DeliveryLatency    `json:"latency"`
			Federation     scbr.FederationCounters `json:"federation"`
		}{
			Meter:          router.MeterSnapshot(),
			Slices:         router.SliceMeterSnapshots(),
			Footprints:     router.SliceFootprints(),
			Recommended:    router.RecommendPartitions(),
			DataPlane:      router.DataPlaneStats(),
			Placement:      router.PlacementSnapshot(),
			DeliveryQueues: router.DeliveryQueueDepths(),
			Delivery:       router.DeliverySnapshot(),
			Latency:        router.DeliveryLatencySnapshot(),
			Federation:     router.FederationSnapshot(),
		}
		writeJSON(w, http.StatusOK, &snapshot)
	})
	mux.HandleFunc("/control/repartition", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", "POST")
			httpError(w, http.StatusMethodNotAllowed, "repartition mutates the fleet: use POST")
			return
		}
		k, err := strconv.Atoi(r.URL.Query().Get("partitions"))
		if err != nil {
			httpError(w, http.StatusBadRequest, "partitions must be an integer slice count (0 = auto-size from the EPC footprint)")
			return
		}
		snap, err := router.Repartition(r.Context(), k)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		log.Printf("repartitioned to %d slices (epoch %d, %d shards moved, pause %s)",
			snap.Slices, snap.Epoch, snap.ShardsMoved, time.Duration(snap.LastPauseNanos))
		writeJSON(w, http.StatusOK, &snap)
	})
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	log.Printf("metrics on http://%s/metrics, control on /control/repartition", ln.Addr())
	return srv, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
