// Command scbr-router runs the SCBR routing engine: it launches the
// (simulated) SGX enclave, writes the trust bundle a publisher needs
// to attest it, and serves registrations, publications, and client
// delivery channels until interrupted.
//
// Usage:
//
//	scbr-router -listen 127.0.0.1:7070 -trust router-trust.json \
//	    [-partitions 4] [-switchless] [-epc 93] [-pad 0] [-delivery-queue 256]
//
// followed by scbr-publisher and scbr-subscriber pointed at it.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"scbr"
	"scbr/internal/deploy"
)

// enclaveImage is the measured router code; publishers pin its
// MRENCLAVE via the trust bundle.
var enclaveImage = []byte("scbr routing engine enclave image v1.0")

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "scbr-router:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen     = flag.String("listen", "127.0.0.1:7070", "address to serve on")
		trust      = flag.String("trust", "router-trust.json", "path to write the trust bundle")
		epcMB      = flag.Uint64("epc", scbr.DefaultEPCBytes>>20, "usable EPC in MB")
		platform   = flag.String("platform", "local-platform", "platform identity for attestation")
		pad        = flag.Int("pad", 0, "engine record padding in bytes")
		partitions = flag.Int("partitions", 1, "enclave matcher slices to shard the subscription database across")
		switchless = flag.Bool("switchless", false, "route publications through per-partition untrusted-memory rings")
		queueLen   = flag.Int("delivery-queue", 0, "per-client delivery queue bound (0 = default 256); overflowing clients are disconnected")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	dev, err := scbr.NewDevice(nil)
	if err != nil {
		return err
	}
	quoter, err := scbr.NewQuoter(dev, *platform)
	if err != nil {
		return err
	}
	signer, err := scbr.NewKeyPair(nil)
	if err != nil {
		return err
	}
	opts := []scbr.Option{
		scbr.WithEPC(*epcMB << 20),
		scbr.WithPadding(*pad),
		scbr.WithPartitions(*partitions),
		scbr.WithDeliveryQueue(*queueLen),
	}
	if *switchless {
		opts = append(opts, scbr.WithSwitchless())
	}
	router, err := scbr.NewRouter(dev, quoter, enclaveImage, signer.Public(), opts...)
	if err != nil {
		return err
	}
	defer router.Close()
	identity := router.Identity()
	bundle, err := deploy.NewTrustBundle(quoter, identity)
	if err != nil {
		return err
	}
	if err := bundle.Save(*trust); err != nil {
		return err
	}
	log.Printf("enclave launched: MRENCLAVE=%x…", identity.MRENCLAVE[:8])
	log.Printf("trust bundle written to %s", *trust)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	log.Printf("serving on %s (EPC %d MB, %d partitions, switchless=%v)", ln.Addr(), *epcMB, *partitions, *switchless)

	if err := router.Serve(ctx, ln); err != nil && !errors.Is(err, context.Canceled) {
		return err
	}
	log.Printf("shutting down")
	return nil
}
