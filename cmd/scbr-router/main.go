// Command scbr-router runs the SCBR routing engine: it launches the
// (simulated) SGX enclave, writes the trust bundle a publisher needs
// to attest it, and serves registrations, publications, and client
// delivery channels.
//
// Usage:
//
//	scbr-router -listen 127.0.0.1:7070 -trust router-trust.json
//
// followed by scbr-publisher and scbr-subscriber pointed at it.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"scbr/internal/attest"
	"scbr/internal/broker"
	"scbr/internal/deploy"
	"scbr/internal/scrypto"
	"scbr/internal/sgx"
	"scbr/internal/simmem"
)

// enclaveImage is the measured router code; publishers pin its
// MRENCLAVE via the trust bundle.
var enclaveImage = []byte("scbr routing engine enclave image v1.0")

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "scbr-router:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen   = flag.String("listen", "127.0.0.1:7070", "address to serve on")
		trust    = flag.String("trust", "router-trust.json", "path to write the trust bundle")
		epcMB    = flag.Uint64("epc", sgx.DefaultEPCBytes>>20, "usable EPC in MB")
		platform = flag.String("platform", "local-platform", "platform identity for attestation")
		pad      = flag.Int("pad", 0, "engine record padding in bytes")
	)
	flag.Parse()

	dev, err := sgx.NewDevice(nil, simmem.DefaultCost())
	if err != nil {
		return err
	}
	quoter, err := attest.NewQuoter(dev, *platform)
	if err != nil {
		return err
	}
	signer, err := scrypto.NewKeyPair(nil)
	if err != nil {
		return err
	}
	router, err := broker.NewRouter(dev, quoter, broker.RouterConfig{
		EnclaveImage:  enclaveImage,
		EnclaveSigner: signer.Public(),
		EPCBytes:      *epcMB << 20,
		PadRecordTo:   *pad,
	})
	if err != nil {
		return err
	}
	identity := router.Identity()
	bundle, err := deploy.NewTrustBundle(quoter, identity)
	if err != nil {
		return err
	}
	if err := bundle.Save(*trust); err != nil {
		return err
	}
	log.Printf("enclave launched: MRENCLAVE=%x…", identity.MRENCLAVE[:8])
	log.Printf("trust bundle written to %s", *trust)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	log.Printf("serving on %s (EPC %d MB)", ln.Addr(), *epcMB)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- router.Serve(ln) }()
	select {
	case <-sig:
		log.Printf("shutting down")
		router.Close()
		<-done
		return nil
	case err := <-done:
		return err
	}
}
