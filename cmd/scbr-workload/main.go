// Command scbr-workload inspects and exports the Table 1 workload
// datasets: synthetic quote corpora, subscription sets, and
// publication batches, as JSON lines for external tooling.
//
// Usage:
//
//	scbr-workload -stats
//	scbr-workload -workload e80a4 -subs 1000 -pubs 100 -out data/
//	scbr-workload -workload e80a1 -subs 1000 -pubs 100 -scheme aspe
//
// With -scheme the tool also reports the average wire footprint of the
// generated sets under that matching scheme — the space side of the
// paper's plain-vs-ASPE comparison (ASPE registrations carry up to
// three encrypted sign-test vectors per constraint, plaintext ones a
// few dozen bytes).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"text/tabwriter"

	"scbr/internal/core"
	"scbr/internal/pubsub"
	"scbr/internal/scheme"
	"scbr/internal/simmem"
	"scbr/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "scbr-workload:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		name    = flag.String("workload", "e80a1", "Table 1 workload name")
		nSubs   = flag.Int("subs", 0, "subscriptions to export")
		nPubs   = flag.Int("pubs", 0, "publications to export")
		outDir  = flag.String("out", "", "output directory (default: stdout)")
		stats   = flag.Bool("stats", false, "print Table 1 workload summaries and exit")
		seed    = flag.Int64("seed", 1, "generator seed")
		symbols = flag.Int("symbols", workload.DefaultNumSymbols, "corpus symbols")
		perSym  = flag.Int("per-symbol", workload.DefaultQuotesPerSym, "quotes per symbol")
		schemeN = flag.String("scheme", "", "report the generated sets' wire footprint under this matching scheme (e.g. sgx-plain, aspe)")
	)
	flag.Parse()

	if *stats {
		return printStats()
	}
	if *nSubs == 0 && *nPubs == 0 {
		return fmt.Errorf("nothing to do: pass -subs/-pubs or -stats")
	}
	spec, err := workload.SpecByName(*name)
	if err != nil {
		return err
	}
	qs, err := workload.NewQuoteSet(*seed, *symbols, *perSym)
	if err != nil {
		return err
	}
	gen, err := workload.NewGenerator(spec, qs, *seed)
	if err != nil {
		return err
	}
	subs := gen.Subscriptions(*nSubs)
	events := gen.Publications(*nPubs)
	if *nSubs > 0 {
		if err := export(*outDir, spec.Name+"-subs.jsonl", func(w *bufio.Writer) error {
			enc := json.NewEncoder(w)
			for _, s := range subs {
				if err := enc.Encode(subJSON(s)); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return err
		}
	}
	if *nPubs > 0 {
		if err := export(*outDir, spec.Name+"-pubs.jsonl", func(w *bufio.Writer) error {
			enc := json.NewEncoder(w)
			for _, p := range events {
				if err := enc.Encode(pubJSON(p)); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return err
		}
	}
	if *schemeN != "" {
		return reportFootprint(*schemeN, spec, subs, events)
	}
	return nil
}

// reportFootprint encodes the generated sets under the named matching
// scheme, prints the average wire blob sizes, and cross-checks the
// scheme's store footprint model against a live slice populated with
// the generated subscriptions.
func reportFootprint(schemeName string, spec workload.Spec, subs []pubsub.SubscriptionSpec, events []pubsub.EventSpec) error {
	universe := workload.QuoteAttrs(spec.AttrFactor)
	codec, err := scheme.NewCodec(schemeName,
		scheme.WithAttrs(universe...),
		scheme.WithCalibration(events...))
	if err != nil {
		return err
	}
	subBytes := 0
	for _, s := range subs {
		enc, err := codec.EncodeSubscription(s)
		if err != nil {
			return fmt.Errorf("encoding subscription under %s: %w", codec.Name(), err)
		}
		subBytes += len(enc)
	}
	pubBytes := 0
	for _, p := range events {
		enc, err := codec.EncodeEvent(p)
		if err != nil {
			return fmt.Errorf("encoding publication under %s: %w", codec.Name(), err)
		}
		pubBytes += len(enc)
	}
	fmt.Fprintf(os.Stderr, "scheme %s wire footprint: %.1f B/subscription (%d), %.1f B/publication header (%d)\n",
		codec.Name(), avg(len(subs), subBytes), len(subs), avg(len(events), pubBytes), len(events))
	if len(subs) > 0 {
		if err := crossCheckStore(codec, schemeName, universe, subs); err != nil {
			return err
		}
	}
	return nil
}

// crossCheckStore registers the generated subscriptions into a freshly
// built slice store and compares the measured store bytes against the
// scheme's FootprintModel prediction — the ground truth behind
// deploy.Plan's partition sizing.
func crossCheckStore(codec scheme.Codec, schemeName string, universe []string, subs []pubsub.SubscriptionSpec) error {
	b, err := scheme.Lookup(schemeName)
	if err != nil {
		return err
	}
	slice, err := b.NewSlice(simmem.NewPlainAccessor(simmem.DefaultCost()), pubsub.NewSchema(), core.Options{})
	if err != nil {
		return err
	}
	params, err := codec.Params()
	if err != nil {
		return err
	}
	// scbr:vet ignore(enclavemeter): footprint cross-check over a plain untrusted-memory accessor; no enclave exists, so there is no transition to meter
	if err := slice.Configure(params); err != nil {
		return err
	}
	for i, s := range subs {
		enc, err := codec.EncodeSubscription(s)
		if err != nil {
			return fmt.Errorf("encoding subscription under %s: %w", codec.Name(), err)
		}
		// scbr:vet ignore(enclavemeter): same plain-accessor cross-check; byte counts are the measurement, not enclave cost
		if _, err := slice.RegisterEncoded(enc, uint32(i)); err != nil {
			return fmt.Errorf("registering subscription under %s: %w", codec.Name(), err)
		}
	}
	stats := slice.Stats()
	predicted := b.Footprint.Footprint(len(subs), len(universe))
	delta := 0.0
	if stats.Bytes > 0 {
		delta = (float64(predicted) - float64(stats.Bytes)) / float64(stats.Bytes) * 100
	}
	fmt.Fprintf(os.Stderr,
		"scheme %s store footprint: measured %d B for %d subscriptions (%.1f B/sub), model predicts %d B (%+.1f%%)\n",
		codec.Name(), stats.Bytes, stats.Subscriptions,
		avg(stats.Subscriptions, int(stats.Bytes)), predicted, delta)
	return nil
}

func avg(n, total int) float64 {
	if n == 0 {
		return 0
	}
	return float64(total) / float64(n)
}

func printStats() error {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "workload\tattr factor\tdistribution\tequality mix")
	for _, s := range workload.Table1() {
		mix := ""
		for i, c := range s.EqMix {
			if i > 0 {
				mix += ", "
			}
			mix += fmt.Sprintf("%.0f%% with %d eq", c.Frac*100, c.NumEq)
		}
		fmt.Fprintf(w, "%s\t×%d\t%s\t%s\n", s.Name, s.AttrFactor, s.Dist, mix)
	}
	return w.Flush()
}

func export(dir, name string, write func(*bufio.Writer) error) error {
	var w *bufio.Writer
	if dir == "" {
		w = bufio.NewWriter(os.Stdout)
	} else {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		w = bufio.NewWriter(f)
		fmt.Fprintf(os.Stderr, "writing %s\n", filepath.Join(dir, name))
	}
	if err := write(w); err != nil {
		return err
	}
	return w.Flush()
}

func subJSON(s pubsub.SubscriptionSpec) map[string]any {
	preds := make([]map[string]any, 0, len(s.Predicates))
	for _, p := range s.Predicates {
		m := map[string]any{"attr": p.Attr, "op": p.Op.String(), "value": valueJSON(p.Value)}
		if p.Op == pubsub.OpBetween {
			m["hi"] = valueJSON(p.Hi)
		}
		preds = append(preds, m)
	}
	return map[string]any{"predicates": preds}
}

func pubJSON(p pubsub.EventSpec) map[string]any {
	attrs := make(map[string]any, len(p.Attrs))
	for _, a := range p.Attrs {
		attrs[a.Name] = valueJSON(a.Value)
	}
	return attrs
}

func valueJSON(v pubsub.Value) any {
	switch v.Kind {
	case pubsub.KindInt:
		return v.I
	case pubsub.KindFloat:
		return v.F
	default:
		return v.S
	}
}
