package cmd_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestBenchdiffCLI exercises scbr-benchdiff on both artifact shapes:
// microbenchmark wraps diff per-variant metrics and gate regressions
// through the exit code, loadgen reports diff cell metrics, and
// mixed-shape inputs report no overlap and succeed.
func TestBenchdiffCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs a binary")
	}
	bin := filepath.Join(t.TempDir(), "scbr-benchdiff")
	if out, err := exec.Command("go", "build", "-o", bin, "scbr/cmd/scbr-benchdiff").CombinedOutput(); err != nil {
		t.Fatalf("building scbr-benchdiff: %v\n%s", err, out)
	}
	dir := t.TempDir()
	write := func(name, body string) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	oldBench := write("old.json", `{"commit":"old","lines":[
		"goos: linux",
		"BenchmarkEndToEndPublish/partitions=4 \t 10\t 400000 ns/op\t 20.0 simµs/op\t 100 allocs/op",
		"PASS"]}`)
	newBench := write("new.json", `{"commit":"new","lines":[
		"BenchmarkEndToEndPublish/partitions=4 \t 10\t 200000 ns/op\t 20.0 simµs/op\t 150 allocs/op",
		"BenchmarkEndToEndPublish/batch=16 \t 10\t 100000 ns/op\t 5 allocs/op"]}`)
	loadgen := write("loadgen.json", `{"cells":[
		{"partitions":4,"scheme":"aspe","routers":1,"scale":1,"events_per_sec":1000,
		 "end_to_end":{"p50_ns":5000000,"p95_ns":9000000}}]}`)

	run := func(wantExit int, args ...string) string {
		t.Helper()
		out, err := exec.Command(bin, args...).CombinedOutput()
		exit := 0
		if ee, ok := err.(*exec.ExitError); ok {
			exit = ee.ExitCode()
		} else if err != nil {
			t.Fatalf("scbr-benchdiff %v: %v\n%s", args, err, out)
		}
		if exit != wantExit {
			t.Fatalf("scbr-benchdiff %v: exit %d, want %d\n%s", args, exit, wantExit, out)
		}
		return string(out)
	}

	// Report-only: improvements and regressions print, exit 0.
	out := run(0, oldBench, newBench)
	if !strings.Contains(out, "partitions=4") || !strings.Contains(out, "-50.00%") {
		t.Fatalf("expected ns/op improvement in report:\n%s", out)
	}
	if strings.Contains(out, "batch=16") {
		t.Fatalf("variant absent from the old artifact must not be compared:\n%s", out)
	}

	// Gated: the 50% allocs/op growth trips the allocation gate...
	out = run(1, "-allocs-threshold", "10", oldBench, newBench)
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "FAIL") {
		t.Fatalf("expected gated allocs/op regression:\n%s", out)
	}
	// ...but not a looser one, and the ns/op gate sees an improvement.
	run(0, "-allocs-threshold", "60", "-threshold", "10", oldBench, newBench)

	// Same-shape loadgen artifacts compare cell metrics.
	out = run(0, loadgen, loadgen)
	if !strings.Contains(out, "partitions=4/scheme=aspe/routers=1/scale=1") || !strings.Contains(out, "events/sec") {
		t.Fatalf("expected loadgen cell metrics:\n%s", out)
	}

	// Mixed shapes: nothing comparable, still exit 0.
	out = run(0, loadgen, newBench)
	if !strings.Contains(out, "no overlapping variants") {
		t.Fatalf("expected no-overlap note:\n%s", out)
	}

	// Unreadable artifact: usage/artifact error.
	run(2, filepath.Join(dir, "missing.json"), newBench)
}
