// Command scbr-subscriber is a data consumer: it registers
// subscriptions with the publisher (which admits it and forwards them
// to the enclave) and prints the decrypted payloads the router
// delivers through its Subscription handles.
//
// Usage:
//
//	scbr-subscriber -id alice -publisher 127.0.0.1:7071 \
//	    -router 127.0.0.1:7070 -key publisher-key.json \
//	    -sub 'symbol = HAL, close < 50' -sub 'volume >= 1000000' \
//	    [-resume]
//
// With -resume the subscriber binds its delivery channel through the
// cursor-resume protocol: if the router connection drops it redials
// and presents its last-seen delivery cursor, the router replays the
// retained gap, and consumption continues on the same Subscription
// handles without loss (unrecoverable losses are logged as a gap).
//
// The subscriber is matching-scheme transparent: it always submits
// plaintext subscription expressions to the publisher, which encodes
// them under the deployment's scheme (-scheme on scbr-publisher and
// scbr-router), and payloads arrive group-key-sealed either way. The
// client learns the scheme ID from the subscribe ack and tags its
// listen binds with it, so attaching to a wrong-scheme router fails
// loudly instead of waiting forever.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"scbr"
	"scbr/internal/deploy"
)

// subList collects repeated -sub flags.
type subList []string

func (s *subList) String() string     { return fmt.Sprint(*s) }
func (s *subList) Set(v string) error { *s = append(*s, v); return nil }

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "scbr-subscriber:", err)
		os.Exit(1)
	}
}

func run() error {
	var subs subList
	var (
		id         = flag.String("id", "client-1", "client identity")
		pubAddr    = flag.String("publisher", "127.0.0.1:7071", "publisher admission address")
		routerAddr = flag.String("router", "127.0.0.1:7070", "router address")
		keyPath    = flag.String("key", "publisher-key.json", "publisher public key file")
		max        = flag.Int64("count", 0, "exit after this many deliveries (0 = unlimited)")
		resume     = flag.Bool("resume", false, "reconnect on delivery-connection loss and resume from the last-seen cursor")
	)
	flag.Var(&subs, "sub", "subscription expression (repeatable), e.g. 'symbol = HAL, close < 50'")
	flag.Parse()
	if len(subs) == 0 {
		return fmt.Errorf("at least one -sub expression is required")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	pk, err := deploy.LoadPublisherKey(*keyPath)
	if err != nil {
		return err
	}
	client, err := scbr.NewClient(*id)
	if err != nil {
		return err
	}
	defer client.Close()

	pubConn, err := net.Dial("tcp", *pubAddr)
	if err != nil {
		return fmt.Errorf("dialing publisher: %w", err)
	}
	client.ConnectPublisher(pubConn, pk)

	routerConn, err := net.Dial("tcp", *routerAddr)
	if err != nil {
		return fmt.Errorf("dialing router: %w", err)
	}
	if *resume {
		if _, err := client.Resume(ctx, routerConn); err != nil {
			return fmt.Errorf("binding delivery channel: %w", err)
		}
	} else if err := client.Attach(ctx, routerConn); err != nil {
		return fmt.Errorf("binding delivery channel: %w", err)
	}

	// One Subscription handle per expression, consumed concurrently;
	// the shared counter enforces -count across all of them.
	consumeCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	if *resume {
		// The resume loop: whenever the delivery pump exits, redial the
		// router and continue from the last-seen cursor. The handles
		// stay live throughout, so the Consume goroutines below never
		// notice the flap beyond a momentary quiet.
		go func() {
			for {
				select {
				case <-consumeCtx.Done():
					return
				case <-client.DeliveryDone():
				}
				conn, err := net.Dial("tcp", *routerAddr)
				if err != nil {
					log.Printf("resume: redial: %v", err)
					select {
					case <-consumeCtx.Done():
						return
					case <-time.After(500 * time.Millisecond):
					}
					continue
				}
				gap, err := client.Resume(consumeCtx, conn)
				if err != nil {
					log.Printf("resume: %v", err)
					_ = conn.Close()
					select {
					case <-consumeCtx.Done():
						return
					case <-time.After(500 * time.Millisecond):
					}
					continue
				}
				if gap > 0 {
					log.Printf("resumed at cursor %d with %d deliveries lost beyond the replay ring", client.LastCursor(), gap)
				} else {
					log.Printf("resumed at cursor %d, no loss", client.LastCursor())
				}
			}
		}()
	}
	var received atomic.Int64
	var wg sync.WaitGroup
	errc := make(chan error, len(subs))
	for _, expr := range subs {
		spec, err := scbr.ParseSpec(expr)
		if err != nil {
			return fmt.Errorf("parsing %q: %w", expr, err)
		}
		sub, err := client.Subscribe(ctx, spec)
		if err != nil {
			return fmt.Errorf("subscribing %q: %w", expr, err)
		}
		log.Printf("subscribed #%d: %s", sub.ID(), sub.Spec())
		wg.Add(1)
		go func(sub *scbr.Subscription) {
			defer wg.Done()
			errc <- sub.Consume(consumeCtx, func(d scbr.Delivery) error {
				if d.Err != nil {
					log.Printf("delivery error (epoch %d): %v", d.Epoch, d.Err)
					return nil
				}
				n := received.Add(1)
				fmt.Printf("[%d] sub=%d epoch=%d payload=%s\n", n, sub.ID(), d.Epoch, d.Payload)
				if *max > 0 && n >= *max {
					cancel()
				}
				return nil
			})
		}(sub)
	}
	wg.Wait()
	for range subs {
		if err := <-errc; err != nil && !errors.Is(err, context.Canceled) {
			return err
		}
	}
	log.Printf("done after %d deliveries", received.Load())
	return nil
}
