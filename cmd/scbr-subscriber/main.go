// Command scbr-subscriber is a data consumer: it registers
// subscriptions with the publisher (which admits it and forwards them
// to the enclave) and prints the decrypted payloads the router
// delivers through its Subscription handles.
//
// Usage:
//
//	scbr-subscriber -id alice -publisher 127.0.0.1:7071 \
//	    -router 127.0.0.1:7070 -key publisher-key.json \
//	    -sub 'symbol = HAL, close < 50' -sub 'volume >= 1000000'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"

	"scbr"
	"scbr/internal/deploy"
)

// subList collects repeated -sub flags.
type subList []string

func (s *subList) String() string     { return fmt.Sprint(*s) }
func (s *subList) Set(v string) error { *s = append(*s, v); return nil }

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "scbr-subscriber:", err)
		os.Exit(1)
	}
}

func run() error {
	var subs subList
	var (
		id         = flag.String("id", "client-1", "client identity")
		pubAddr    = flag.String("publisher", "127.0.0.1:7071", "publisher admission address")
		routerAddr = flag.String("router", "127.0.0.1:7070", "router address")
		keyPath    = flag.String("key", "publisher-key.json", "publisher public key file")
		max        = flag.Int64("count", 0, "exit after this many deliveries (0 = unlimited)")
	)
	flag.Var(&subs, "sub", "subscription expression (repeatable), e.g. 'symbol = HAL, close < 50'")
	flag.Parse()
	if len(subs) == 0 {
		return fmt.Errorf("at least one -sub expression is required")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	pk, err := deploy.LoadPublisherKey(*keyPath)
	if err != nil {
		return err
	}
	client, err := scbr.NewClient(*id)
	if err != nil {
		return err
	}
	defer client.Close()

	pubConn, err := net.Dial("tcp", *pubAddr)
	if err != nil {
		return fmt.Errorf("dialing publisher: %w", err)
	}
	client.ConnectPublisher(pubConn, pk)

	routerConn, err := net.Dial("tcp", *routerAddr)
	if err != nil {
		return fmt.Errorf("dialing router: %w", err)
	}
	if err := client.Attach(ctx, routerConn); err != nil {
		return fmt.Errorf("binding delivery channel: %w", err)
	}

	// One Subscription handle per expression, consumed concurrently;
	// the shared counter enforces -count across all of them.
	consumeCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var received atomic.Int64
	var wg sync.WaitGroup
	errc := make(chan error, len(subs))
	for _, expr := range subs {
		spec, err := scbr.ParseSpec(expr)
		if err != nil {
			return fmt.Errorf("parsing %q: %w", expr, err)
		}
		sub, err := client.Subscribe(ctx, spec)
		if err != nil {
			return fmt.Errorf("subscribing %q: %w", expr, err)
		}
		log.Printf("subscribed #%d: %s", sub.ID(), sub.Spec())
		wg.Add(1)
		go func(sub *scbr.Subscription) {
			defer wg.Done()
			errc <- sub.Consume(consumeCtx, func(d scbr.Delivery) error {
				if d.Err != nil {
					log.Printf("delivery error (epoch %d): %v", d.Epoch, d.Err)
					return nil
				}
				n := received.Add(1)
				fmt.Printf("[%d] sub=%d epoch=%d payload=%s\n", n, sub.ID(), d.Epoch, d.Payload)
				if *max > 0 && n >= *max {
					cancel()
				}
				return nil
			})
		}(sub)
	}
	wg.Wait()
	for range subs {
		if err := <-errc; err != nil && !errors.Is(err, context.Canceled) {
			return err
		}
	}
	log.Printf("done after %d deliveries", received.Load())
	return nil
}
