// Command scbr-subscriber is a data consumer: it registers
// subscriptions with the publisher (which admits it and forwards them
// to the enclave) and prints the decrypted payloads the router
// delivers.
//
// Usage:
//
//	scbr-subscriber -id alice -publisher 127.0.0.1:7071 \
//	    -router 127.0.0.1:7070 -key publisher-key.json \
//	    -sub 'symbol = HAL, close < 50' -sub 'volume >= 1000000'
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"scbr/internal/broker"
	"scbr/internal/deploy"
	"scbr/internal/pubsub"
)

// subList collects repeated -sub flags.
type subList []string

func (s *subList) String() string     { return fmt.Sprint(*s) }
func (s *subList) Set(v string) error { *s = append(*s, v); return nil }

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "scbr-subscriber:", err)
		os.Exit(1)
	}
}

func run() error {
	var subs subList
	var (
		id         = flag.String("id", "client-1", "client identity")
		pubAddr    = flag.String("publisher", "127.0.0.1:7071", "publisher admission address")
		routerAddr = flag.String("router", "127.0.0.1:7070", "router address")
		keyPath    = flag.String("key", "publisher-key.json", "publisher public key file")
		max        = flag.Int("count", 0, "exit after this many deliveries (0 = unlimited)")
	)
	flag.Var(&subs, "sub", "subscription expression (repeatable), e.g. 'symbol = HAL, close < 50'")
	flag.Parse()
	if len(subs) == 0 {
		return fmt.Errorf("at least one -sub expression is required")
	}

	pk, err := deploy.LoadPublisherKey(*keyPath)
	if err != nil {
		return err
	}
	client, err := broker.NewClient(*id)
	if err != nil {
		return err
	}
	defer client.Close()

	pubConn, err := net.Dial("tcp", *pubAddr)
	if err != nil {
		return fmt.Errorf("dialing publisher: %w", err)
	}
	client.ConnectPublisher(pubConn, pk)

	routerConn, err := net.Dial("tcp", *routerAddr)
	if err != nil {
		return fmt.Errorf("dialing router: %w", err)
	}
	deliveries, err := client.Listen(routerConn)
	if err != nil {
		return fmt.Errorf("binding delivery channel: %w", err)
	}

	for _, expr := range subs {
		spec, err := pubsub.ParseSpec(expr)
		if err != nil {
			return fmt.Errorf("parsing %q: %w", expr, err)
		}
		subID, err := client.Subscribe(spec)
		if err != nil {
			return fmt.Errorf("subscribing %q: %w", expr, err)
		}
		log.Printf("subscribed #%d: %s", subID, spec)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	received := 0
	for {
		select {
		case <-stop:
			log.Printf("interrupted after %d deliveries", received)
			return nil
		case d, ok := <-deliveries:
			if !ok {
				log.Printf("delivery channel closed after %d deliveries", received)
				return nil
			}
			if d.Err != nil {
				log.Printf("delivery error (epoch %d): %v", d.Epoch, d.Err)
				continue
			}
			received++
			fmt.Printf("[%d] epoch=%d payload=%s\n", received, d.Epoch, d.Payload)
			if *max > 0 && received >= *max {
				return nil
			}
		}
	}
}
