// Command scbr-publisher runs a service provider: it attests the
// router's enclave, provisions the symmetric key SK, serves client
// subscription admission, and (optionally) publishes a synthetic
// stock-quote feed from the Table 1 workload generator.
//
// Usage:
//
//	scbr-publisher -router 127.0.0.1:7070 -trust router-trust.json \
//	    -listen 127.0.0.1:7071 -key publisher-key.json \
//	    -feed e80a1 -count 1000 -interval 100ms [-batch 1] \
//	    [-scheme sgx-plain|aspe] [-scheme-attrs a,b,c] [-scheme-seed 0]
//
// With -batch > 1 the feed pipelines that many quotes per router
// round trip through PublishBatch.
//
// -scheme selects the matching scheme (must match the router's
// -scheme). The aspe scheme needs a fixed attribute universe:
// -scheme-attrs lists it explicitly, defaulting to the quote-corpus
// attributes of the selected -feed workload.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"scbr"
	"scbr/internal/deploy"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "scbr-publisher:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		routerAddr = flag.String("router", "127.0.0.1:7070", "router address")
		trustPath  = flag.String("trust", "router-trust.json", "router trust bundle")
		listen     = flag.String("listen", "127.0.0.1:7071", "client admission address")
		keyPath    = flag.String("key", "publisher-key.json", "path to write the publisher public key")
		feed       = flag.String("feed", "", "publish a synthetic feed from this Table 1 workload (e.g. e80a1)")
		count      = flag.Int("count", 0, "number of feed publications (0 = unlimited)")
		interval   = flag.Duration("interval", 200*time.Millisecond, "delay between feed rounds")
		batch      = flag.Int("batch", 1, "publications per router round trip (PublishBatch when > 1)")
		seed       = flag.Int64("seed", 1, "feed generator seed")
		schemeName = flag.String("scheme", scbr.SchemePlain, "matching scheme to encode under (sgx-plain or aspe; must match the router's -scheme)")
		schemeAttr = flag.String("scheme-attrs", "", "comma-separated attribute universe for schemes that need one (default: the -feed workload's quote attributes)")
		schemeSeed = flag.Int64("scheme-seed", 0, "deterministic seed for the scheme's secret material (0 = random)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	bundle, err := deploy.LoadTrustBundle(*trustPath)
	if err != nil {
		return err
	}
	svc, identity, err := bundle.Service()
	if err != nil {
		return err
	}
	schemeOpts, err := schemeOptions(*schemeName, *schemeAttr, *feed, *schemeSeed)
	if err != nil {
		return err
	}
	pub, err := scbr.NewPublisher(svc, identity, scbr.WithScheme(*schemeName, schemeOpts...))
	if err != nil {
		return err
	}
	log.Printf("encoding under matching scheme %s", pub.Scheme())
	conn, err := net.Dial("tcp", *routerAddr)
	if err != nil {
		return fmt.Errorf("dialing router: %w", err)
	}
	if err := pub.ConnectRouter(ctx, conn); err != nil {
		return fmt.Errorf("attesting router: %w", err)
	}
	log.Printf("router enclave attested; SK provisioned")
	if err := deploy.SavePublisherKey(*keyPath, pub.PublicKey()); err != nil {
		return err
	}
	log.Printf("publisher key written to %s", *keyPath)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	log.Printf("admitting clients on %s", ln.Addr())

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer c.Close()
				pub.ServeClient(ctx, c)
			}()
		}
	}()

	if *feed != "" {
		if err := runFeed(ctx, pub, *feed, *count, *interval, *batch, *seed); err != nil {
			_ = ln.Close()
			wg.Wait()
			return err
		}
	} else {
		<-ctx.Done()
	}
	log.Printf("shutting down")
	_ = ln.Close()
	_ = conn.Close()
	wg.Wait()
	return nil
}

// schemeOptions assembles the scheme codec options: an explicit
// -scheme-attrs universe wins; otherwise schemes that need one get the
// quote attributes of the selected feed workload (suffixed per its
// attribute factor).
func schemeOptions(schemeName, attrCSV, feed string, seed int64) ([]scbr.SchemeOption, error) {
	var opts []scbr.SchemeOption
	if seed != 0 {
		opts = append(opts, scbr.WithSchemeSeed(seed))
	}
	if attrCSV != "" {
		var names []string
		for _, a := range strings.Split(attrCSV, ",") {
			if a = strings.TrimSpace(a); a != "" {
				names = append(names, a)
			}
		}
		return append(opts, scbr.WithSchemeAttrs(names...)), nil
	}
	caps, err := scbr.LookupScheme(schemeName)
	if err != nil {
		return nil, err
	}
	// Schemes with sealed plaintext exchange have no fixed universe;
	// only supply the default one where a universe is meaningful.
	if caps.SealedExchange {
		return opts, nil
	}
	factor := 1
	if feed != "" {
		wl, err := scbr.WorkloadByName(feed)
		if err != nil {
			return nil, err
		}
		factor = wl.AttrFactor
	}
	return append(opts, scbr.WithSchemeAttrs(scbr.QuoteAttrs(factor)...)), nil
}

// runFeed publishes synthetic quotes until count is reached or ctx is
// cancelled. With batch > 1 it pipelines that many quotes per router
// round trip.
func runFeed(ctx context.Context, pub *scbr.Publisher, name string, count int, interval time.Duration, batch int, seed int64) error {
	wl, err := scbr.WorkloadByName(name)
	if err != nil {
		return err
	}
	qs, err := scbr.NewQuoteSet(seed, 100, 200)
	if err != nil {
		return err
	}
	gen, err := scbr.NewWorkloadGenerator(wl, qs, seed)
	if err != nil {
		return err
	}
	if batch < 1 {
		batch = 1
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	published := 0
	for count == 0 || published < count {
		select {
		case <-ctx.Done():
			log.Printf("feed interrupted after %d publications", published)
			return nil
		case <-ticker.C:
		}
		round := batch
		if count > 0 && published+round > count {
			round = count - published
		}
		events := make([]scbr.Event, 0, round)
		for i := 0; i < round; i++ {
			header := gen.Publication()
			payload, err := json.Marshal(header.Attrs)
			if err != nil {
				return err
			}
			events = append(events, scbr.Event{Header: header, Payload: payload})
		}
		if len(events) == 1 {
			err = pub.Publish(ctx, events[0].Header, events[0].Payload)
		} else {
			err = pub.PublishBatch(ctx, events)
		}
		if errors.Is(err, context.Canceled) {
			// The interrupt landed mid-publish: same graceful exit as
			// a cancel caught by the select above.
			log.Printf("feed interrupted after %d publications", published)
			return nil
		}
		if err != nil {
			return fmt.Errorf("publishing: %w", err)
		}
		published += len(events)
		if published%100 == 0 {
			log.Printf("published %d quotes (group epoch %d)", published, pub.GroupEpoch())
		}
	}
	log.Printf("feed complete: %d publications", published)
	return nil
}
