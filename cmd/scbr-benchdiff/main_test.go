package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestArtifactSeqOrdering(t *testing.T) {
	for _, tc := range []struct {
		path string
		want int
	}{
		{"BENCH_pr5.json", 5},
		{"some/dir/BENCH_pr12.json", 12},
		{"BENCH_pr9.json", 9},
		{"notes.json", 1 << 30},
		{"BENCH_prX.json", 1 << 30},
	} {
		if got := artifactSeq(tc.path); got != tc.want {
			t.Errorf("artifactSeq(%q) = %d, want %d", tc.path, got, tc.want)
		}
	}
}

func TestDiffDriftGate(t *testing.T) {
	oldM := metrics{"v": {"cliff-subs": 9000, "cliff-ratio": 3.0}}
	same := metrics{"v": {"cliff-subs": 9000, "cliff-ratio": 3.0}}
	// cliff-subs DROPPED: higher-is-better, so -threshold never fires,
	// only the drift gate catches it.
	moved := metrics{"v": {"cliff-subs": 8000, "cliff-ratio": 3.0}}

	var out bytes.Buffer
	if n := diff(&out, oldM, same, "a", "b", 0, 0, 0.5); n != 0 {
		t.Errorf("identical artifacts gated %d regressions under drift", n)
	}
	if n := diff(&out, oldM, moved, "a", "b", 5, 0, 0); n != 0 {
		t.Errorf("higher-is-better drop gated by -threshold (%d), should not be", n)
	}
	out.Reset()
	if n := diff(&out, oldM, moved, "a", "b", 0, 0, 0.5); n != 1 {
		t.Errorf("drift gate caught %d regressions, want 1\n%s", n, out.String())
	}
	if !strings.Contains(out.String(), "DRIFT") {
		t.Errorf("no DRIFT marker in output:\n%s", out.String())
	}
}

func TestHistoryChainsArtifacts(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	// pr10 must sort after pr9 (numeric, not lexical) and the metric
	// present in both must chain with a step delta.
	p9 := write("BENCH_pr9.json", `{"commit":"c9","lines":["BenchmarkX/v\t1\t100 simµs/op"]}`)
	p10 := write("BENCH_pr10.json", `{"commit":"c10","lines":["BenchmarkX/v\t1\t110 simµs/op"]}`)

	var out bytes.Buffer
	if err := printHistory(&out, []string{p10, p9}); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "pr9 -> pr10") {
		t.Errorf("chain order wrong:\n%s", got)
	}
	if !strings.Contains(got, "pr9 100.00 -> pr10 110.00 (+10.0%)") {
		t.Errorf("no trajectory with step delta:\n%s", got)
	}
}

func TestHistoryNoArtifacts(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(wd); err != nil {
			t.Fatal(err)
		}
	}()
	if err := printHistory(new(bytes.Buffer), nil); err == nil {
		t.Error("empty directory accepted")
	}
}
