// Command scbr-benchdiff compares two benchmark artifacts from this
// repository's CI and reports per-variant metric deltas, with an
// optional regression gate driving the exit code.
//
// Two artifact shapes are understood, and either side may be either:
//
//   - microbenchmark wraps ("lines": raw `go test -bench` output, as in
//     BENCH_pr5.json / BENCH_pr7.json) — variants are the benchmark
//     sub-names, metrics are the reported units (ns/op, simµs/op,
//     allocs/op, B/op, ns/event, ...);
//   - loadgen reports ("cells", as in BENCH_pr6.json and the
//     scbr-loadgen output) — variants name the cell (scenario,
//     partitions, scheme, routers, scale), metrics are throughput and
//     latency percentiles.
//
// Only metrics present under the same variant name in both artifacts
// are compared; artifacts with no overlap (a loadgen report against a
// microbenchmark wrap) report that and exit 0, so a stacked CI can diff
// against every prior artifact without caring which harness produced
// it.
//
// Exit status: 0 = compared (or nothing comparable) within thresholds;
// 1 = at least one gated regression; 2 = usage or artifact error.
//
// Usage:
//
//	scbr-benchdiff [-threshold pct] [-allocs-threshold pct] [-drift-threshold pct] old.json new.json
//	scbr-benchdiff -history [artifact.json ...]
//
// -threshold gates every lower-is-better metric except allocs/op;
// -allocs-threshold gates allocs/op alone (the allocation-regression
// gate the CI bench job uses); -drift-threshold gates the absolute
// change of every metric in either direction — the gate for
// deterministic artifacts (the paging-cliff sweep) where any delta
// means behaviour changed, not that a runner was noisy. A zero or
// negative threshold disables that gate; all default to off, making
// the tool report-only.
//
// -history chains a whole artifact sequence instead of diffing a pair:
// given artifact paths (default: ./BENCH_pr*.json, ordered by PR
// number), it prints each variant's per-metric trajectory across every
// artifact that carries it, with the step-to-step change. Always exits
// 0 — trajectories are for reading, the pairwise gates are for CI.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// artifact is the superset of the two artifact shapes; exactly one of
// Lines and Cells is populated in practice.
type artifact struct {
	Commit string `json:"commit"`
	Lines  []string
	Cells  []json.RawMessage
}

// metrics maps variant name → metric name → value.
type metrics map[string]map[string]float64

func main() {
	threshold := flag.Float64("threshold", 0, "max allowed regression percent on lower-is-better metrics other than allocs/op (<=0 disables)")
	allocsThreshold := flag.Float64("allocs-threshold", 0, "max allowed regression percent on allocs/op (<=0 disables)")
	driftThreshold := flag.Float64("drift-threshold", 0, "max allowed absolute change percent on every metric, either direction — for deterministic artifacts where any delta is a break (<=0 disables)")
	history := flag.Bool("history", false, "print per-metric trajectories across a whole artifact chain instead of diffing a pair")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: scbr-benchdiff [flags] old.json new.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *history {
		if err := printHistory(os.Stdout, flag.Args()); err != nil {
			fmt.Fprintf(os.Stderr, "scbr-benchdiff: %v\n", err)
			os.Exit(2)
		}
		return
	}
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	oldM, oldName, err := loadMetrics(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "scbr-benchdiff: %v\n", err)
		os.Exit(2)
	}
	newM, newName, err := loadMetrics(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "scbr-benchdiff: %v\n", err)
		os.Exit(2)
	}
	regressions := diff(os.Stdout, oldM, newM, oldName, newName, *threshold, *allocsThreshold, *driftThreshold)
	if regressions > 0 {
		fmt.Printf("FAIL: %d gated regression(s)\n", regressions)
		os.Exit(1)
	}
}

// loadMetrics reads one artifact and flattens it to variant → metric →
// value. The second return is a short label for the report header.
func loadMetrics(path string) (metrics, string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	var a artifact
	if err := json.Unmarshal(raw, &a); err != nil {
		return nil, "", fmt.Errorf("%s: %w", path, err)
	}
	label := path
	if a.Commit != "" {
		label = fmt.Sprintf("%s (%s)", path, a.Commit)
	}
	m := metrics{}
	for _, line := range a.Lines {
		name, vals, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		m[name] = vals
	}
	for _, cell := range a.Cells {
		name, vals, err := parseCell(cell)
		if err != nil {
			return nil, "", fmt.Errorf("%s: %w", path, err)
		}
		m[name] = vals
	}
	if len(m) == 0 {
		return nil, "", fmt.Errorf("%s: no benchmark lines or loadgen cells found", path)
	}
	return m, label, nil
}

// parseBenchLine extracts the variant name and (unit → value) metrics
// from one `go test -bench` output line; ok is false for non-benchmark
// lines (goos:, PASS, ok, ...).
func parseBenchLine(line string) (string, map[string]float64, bool) {
	fields := strings.Split(line, "\t")
	if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", nil, false
	}
	name := strings.TrimSpace(fields[0])
	if i := strings.IndexByte(name, '/'); i >= 0 {
		name = name[i+1:] // drop the top-level benchmark function name
	}
	vals := make(map[string]float64, len(fields)-2)
	for _, f := range fields[2:] { // fields[1] is the iteration count
		parts := strings.Fields(f)
		if len(parts) != 2 {
			continue
		}
		v, err := strconv.ParseFloat(parts[0], 64)
		if err != nil {
			continue
		}
		vals[parts[1]] = v
	}
	if len(vals) == 0 {
		return "", nil, false
	}
	return name, vals, true
}

// loadgenCell is the slice of a loadgen cell record this tool compares.
type loadgenCell struct {
	Scenario   string  `json:"scenario"` // absent in today's reports; keyed blank
	Partitions int     `json:"partitions"`
	Scheme     string  `json:"scheme"`
	Routers    int     `json:"routers"`
	Scale      float64 `json:"scale"`
	RegPerSec  float64 `json:"register_per_sec"`
	EvtsPerSec float64 `json:"events_per_sec"`
	EndToEnd   struct {
		P50  float64 `json:"p50_ns"`
		P95  float64 `json:"p95_ns"`
		P99  float64 `json:"p99_ns"`
		Mean float64 `json:"mean_ns"`
	} `json:"end_to_end"`
	EnqueueWrite struct {
		P50 float64 `json:"p50_ns"`
		P95 float64 `json:"p95_ns"`
	} `json:"enqueue_write"`
}

func parseCell(raw json.RawMessage) (string, map[string]float64, error) {
	var c loadgenCell
	if err := json.Unmarshal(raw, &c); err != nil {
		return "", nil, fmt.Errorf("decoding loadgen cell: %w", err)
	}
	name := fmt.Sprintf("partitions=%d/scheme=%s/routers=%d/scale=%g", c.Partitions, c.Scheme, c.Routers, c.Scale)
	if c.Scenario != "" {
		name = c.Scenario + "/" + name
	}
	return name, map[string]float64{
		"register/sec":     c.RegPerSec,
		"events/sec":       c.EvtsPerSec,
		"e2e-p50-ns":       c.EndToEnd.P50,
		"e2e-p95-ns":       c.EndToEnd.P95,
		"e2e-p99-ns":       c.EndToEnd.P99,
		"enq-write-p50-ns": c.EnqueueWrite.P50,
	}, nil
}

// lowerIsBetter classifies a metric's direction; metrics that are
// neither (fwd/op, a count) are reported but never gated. The cliff
// metrics are higher-is-better: a later paging cliff means a denser
// store under the same EPC budget.
func lowerIsBetter(metric string) bool {
	switch metric {
	case "register/sec", "events/sec", "fwd/op",
		"cliff-subs", "cliff-db-mb", "cliff-shift":
		return false
	}
	return true
}

// diff prints the per-variant comparison and returns the number of
// gated regressions.
func diff(w io.Writer, oldM, newM metrics, oldName, newName string, threshold, allocsThreshold, driftThreshold float64) int {
	fmt.Fprintf(w, "old: %s\nnew: %s\n", oldName, newName)
	variants := make([]string, 0, len(newM))
	for v := range newM {
		if _, ok := oldM[v]; ok {
			variants = append(variants, v)
		}
	}
	if len(variants) == 0 {
		fmt.Fprintln(w, "no overlapping variants (different harnesses or scenarios); nothing to compare")
		return 0
	}
	sort.Strings(variants)
	regressions := 0
	for _, v := range variants {
		fmt.Fprintf(w, "%s\n", v)
		names := make([]string, 0, len(newM[v]))
		for metric := range newM[v] {
			if _, ok := oldM[v][metric]; ok {
				names = append(names, metric)
			}
		}
		sort.Strings(names)
		for _, metric := range names {
			oldV, newV := oldM[v][metric], newM[v][metric]
			var pct float64
			if oldV != 0 {
				pct = (newV - oldV) / oldV * 100
			}
			gate := threshold
			if metric == "allocs/op" {
				gate = allocsThreshold
			}
			flagStr := ""
			switch {
			case lowerIsBetter(metric) && gate > 0 && pct > gate:
				flagStr = fmt.Sprintf("  REGRESSION (> %+.1f%%)", gate)
				regressions++
			case driftThreshold > 0 && (pct > driftThreshold || pct < -driftThreshold):
				flagStr = fmt.Sprintf("  DRIFT (|Δ| > %.1f%%)", driftThreshold)
				regressions++
			}
			fmt.Fprintf(w, "  %-16s %14.2f -> %14.2f  %+7.2f%%%s\n", metric, oldV, newV, pct, flagStr)
		}
	}
	return regressions
}

// printHistory loads a whole artifact chain and prints each variant's
// per-metric trajectory across every artifact that carries it.
func printHistory(w io.Writer, paths []string) error {
	if len(paths) == 0 {
		var err error
		paths, err = filepath.Glob("BENCH_pr*.json")
		if err != nil {
			return err
		}
	}
	if len(paths) == 0 {
		return fmt.Errorf("-history: no artifacts given and no BENCH_pr*.json here")
	}
	sort.SliceStable(paths, func(i, j int) bool {
		ni, nj := artifactSeq(paths[i]), artifactSeq(paths[j])
		if ni != nj {
			return ni < nj
		}
		return paths[i] < paths[j]
	})
	type entry struct {
		label string
		m     metrics
	}
	entries := make([]entry, 0, len(paths))
	labels := make([]string, 0, len(paths))
	variantSet := map[string]bool{}
	for _, p := range paths {
		m, _, err := loadMetrics(p)
		if err != nil {
			return err
		}
		label := strings.TrimSuffix(filepath.Base(p), ".json")
		label = strings.TrimPrefix(label, "BENCH_")
		entries = append(entries, entry{label: label, m: m})
		labels = append(labels, label)
		for v := range m {
			variantSet[v] = true
		}
	}
	fmt.Fprintf(w, "history across %d artifacts: %s\n", len(entries), strings.Join(labels, " -> "))

	variants := make([]string, 0, len(variantSet))
	for v := range variantSet {
		variants = append(variants, v)
	}
	sort.Strings(variants)
	for _, v := range variants {
		metricSet := map[string]bool{}
		for _, e := range entries {
			for metric := range e.m[v] {
				metricSet[metric] = true
			}
		}
		names := make([]string, 0, len(metricSet))
		for metric := range metricSet {
			names = append(names, metric)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "%s\n", v)
		for _, metric := range names {
			parts := make([]string, 0, len(entries))
			prev, havePrev := 0.0, false
			for _, e := range entries {
				val, ok := e.m[v][metric]
				if !ok {
					continue
				}
				switch {
				case !havePrev:
					parts = append(parts, fmt.Sprintf("%s %.2f", e.label, val))
				case prev != 0:
					parts = append(parts, fmt.Sprintf("%s %.2f (%+.1f%%)", e.label, val, (val-prev)/prev*100))
				default:
					parts = append(parts, fmt.Sprintf("%s %.2f", e.label, val))
				}
				prev, havePrev = val, true
			}
			fmt.Fprintf(w, "  %-16s %s\n", metric, strings.Join(parts, " -> "))
		}
	}
	return nil
}

// artifactSeq extracts the PR sequence number from an artifact
// filename (BENCH_pr7.json -> 7); unnumbered names sort last.
func artifactSeq(path string) int {
	base := filepath.Base(path)
	i := strings.Index(base, "pr")
	if i < 0 {
		return 1 << 30
	}
	n := 0
	digits := false
	for _, r := range base[i+2:] {
		if r < '0' || r > '9' {
			break
		}
		n = n*10 + int(r-'0')
		digits = true
	}
	if !digits {
		return 1 << 30
	}
	return n
}
