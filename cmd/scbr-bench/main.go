// Command scbr-bench regenerates the paper's evaluation: Figures 5–8
// and the Table 1 workload characteristics, printing paper-style
// series to stdout and optionally CSV files for plotting.
//
// Usage:
//
//	scbr-bench -all
//	scbr-bench -fig5 -fig7 e80a1 -csv results/
//	scbr-bench -fig8 -fig8subs 500000 -epc 93
//
// Times are simulated microseconds from the calibrated cost model of
// internal/simmem (see DESIGN.md §2 and EXPERIMENTS.md).
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"

	"scbr/internal/exp"
	"scbr/internal/scheme"
	"scbr/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "scbr-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		all      = flag.Bool("all", false, "run every figure and table")
		fig5     = flag.Bool("fig5", false, "Figure 5: encryption and enclave overhead (e100a1)")
		fig6     = flag.Bool("fig6", false, "Figure 6: all workloads, plaintext outside enclaves")
		fig7     = flag.String("fig7", "", "Figure 7 panel for the named workload, or 'all'")
		fig8     = flag.Bool("fig8", false, "Figure 8: EPC exhaustion during registration")
		table1   = flag.Bool("table1", false, "Table 1: realised workload characteristics")
		ablation = flag.Bool("ablation", false, "ecall-batching ablation (paper §6 future work)")
		split    = flag.Bool("split", false, "split-memory ablation: user-level paging vs hardware EPC paging (paper §6)")
		swl      = flag.Bool("switchless", false, "enclave-border ablation: per-message ecalls vs batching vs switchless ring (paper §6)")
		align    = flag.Bool("align", false, "cache-line-alignment ablation: 64B-aligned records vs natural layout (paper §6)")
		horiz    = flag.Bool("horizontal", false, "horizontal-scalability ablation: 1-8 enclave partitions vs EPC exhaustion (paper §6)")
		cliff    = flag.Bool("cliff", false, "per-scheme paging cliff: where each scheme's slice store outgrows a small EPC budget")
		cliffMB  = flag.Int("cliffepc", 4, "EPC budget in MB for the -cliff sweep")
		cliffN   = flag.Int("cliffsubs", 16_000, "total subscriptions for the -cliff sweep")
		cliffW   = flag.Int("cliffstep", 500, "-cliff window size")
		artifact = flag.String("artifact", "", "write the -cliff result as a benchdiff artifact (JSON) to this path")
		commit   = flag.String("commit", "local", "commit label stamped into -artifact output")
		sizes    = flag.String("sizes", "", "comma-separated database sizes (default paper sizes)")
		pubs     = flag.Int("pubs", 0, "publications per measurement (default 1000)")
		fig8subs = flag.Int("fig8subs", 0, "total subscriptions for Figure 8 (default 500000)")
		fig8step = flag.Int("fig8step", 0, "Figure 8 window size (default 5000)")
		epcMB    = flag.Int("epc", 0, "usable EPC size in MB (default 93)")
		pad      = flag.Int("pad", 0, "record padding in bytes (default 400)")
		seed     = flag.Int64("seed", 0, "corpus/generator seed (default 1)")
		csvDir   = flag.String("csv", "", "also write CSV series into this directory")
	)
	flag.Parse()

	cfg := exp.DefaultConfig()
	if *sizes != "" {
		cfg.Sizes = nil
		for _, s := range strings.Split(*sizes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				return fmt.Errorf("invalid size %q: %w", s, err)
			}
			cfg.Sizes = append(cfg.Sizes, n)
		}
	}
	if *pubs > 0 {
		cfg.PubBatch = *pubs
	}
	if *fig8subs > 0 {
		cfg.Fig8Subs = *fig8subs
	}
	if *fig8step > 0 {
		cfg.Fig8Step = *fig8step
	}
	if *epcMB > 0 {
		cfg.EPCBytes = uint64(*epcMB) << 20
	}
	if *pad > 0 {
		cfg.PadRecordTo = *pad
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}

	ran := false
	if *table1 || *all {
		ran = true
		if err := runTable1(cfg, *csvDir); err != nil {
			return err
		}
	}
	if *fig5 || *all {
		ran = true
		if err := runFig5(cfg, *csvDir); err != nil {
			return err
		}
	}
	if *fig6 || *all {
		ran = true
		if err := runFig6(cfg, *csvDir); err != nil {
			return err
		}
	}
	if *fig7 != "" || *all {
		ran = true
		name := *fig7
		if name == "" || *all {
			name = "all"
		}
		if err := runFig7(cfg, name, *csvDir); err != nil {
			return err
		}
	}
	if *fig8 || *all {
		ran = true
		if err := runFig8(cfg, *csvDir); err != nil {
			return err
		}
	}
	if *ablation || *all {
		ran = true
		if err := runAblation(cfg, *csvDir); err != nil {
			return err
		}
	}
	if *split || *all {
		ran = true
		if err := runSplit(cfg, *csvDir); err != nil {
			return err
		}
	}
	if *swl || *all {
		ran = true
		if err := runSwitchless(cfg, *csvDir); err != nil {
			return err
		}
	}
	if *align || *all {
		ran = true
		if err := runAlign(cfg, *csvDir); err != nil {
			return err
		}
	}
	if *horiz || *all {
		ran = true
		if err := runHorizontal(cfg, *csvDir); err != nil {
			return err
		}
	}
	if *cliff || *all {
		ran = true
		cliffCfg := cfg
		cliffCfg.EPCBytes = uint64(*cliffMB) << 20
		if err := runCliff(cliffCfg, *cliffN, *cliffW, *csvDir, *artifact, *commit); err != nil {
			return err
		}
	}
	if !ran {
		flag.Usage()
	}
	return nil
}

// benchArtifact is the microbenchmark artifact shape scbr-benchdiff
// consumes (the BENCH_pr*.json chain).
type benchArtifact struct {
	Commit string   `json:"commit"`
	Ref    string   `json:"ref"`
	Bench  string   `json:"bench"`
	Note   string   `json:"note"`
	Lines  []string `json:"lines"`
}

func runCliff(cfg exp.Config, maxSubs, step int, csvDir, artifactPath, commit string) error {
	fmt.Printf("== Paging cliff: scheme slice stores vs a %d MB EPC budget (e80a1, windows of %d) ==\n",
		cfg.EPCBytes>>20, step)
	schemes := []string{scheme.Plain, scheme.ASPE}
	results := make([]*exp.CliffResult, 0, len(schemes))
	lines := []string{"pkg: scbr/internal/exp"}
	rec := [][]string{{"scheme", "subs", "db_mb", "us_per_sub", "faults", "writebacks"}}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "scheme\tcliff subs\tcliff DB MB\tpre µs/sub\tpost µs/sub\tratio\t")
	for _, name := range schemes {
		res, err := exp.PagingCliff(cfg, name, maxSubs, step)
		if err != nil {
			return err
		}
		results = append(results, res)
		fmt.Fprintf(w, "%s\t%d\t%.2f\t%.2f\t%.2f\t%.1f×\t\n",
			res.Scheme, res.CliffSubs, res.CliffDBMB,
			res.PreMicrosPerSub, res.PostMicrosPerSub, res.Ratio)
		lines = append(lines, fmt.Sprintf(
			"BenchmarkPagingCliff/cliff/scheme=%s\t%8d\t%12d cliff-subs\t%12.3f cliff-db-mb\t%12.3f pre-cliff-simus-sub\t%12.3f post-cliff-simus-sub\t%12.3f cliff-ratio",
			res.Scheme, 1, res.CliffSubs, res.CliffDBMB,
			res.PreMicrosPerSub, res.PostMicrosPerSub, res.Ratio))
		for _, win := range res.Windows {
			rec = append(rec, []string{
				res.Scheme, strconv.Itoa(win.Subs), fmt.Sprintf("%.3f", win.DBMB),
				fmt.Sprintf("%.3f", win.MicrosPerSub),
				strconv.FormatUint(win.Faults, 10), strconv.FormatUint(win.Writebacks, 10),
			})
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	// The headline comparison: how many times earlier the software-only
	// encrypted scheme hits the cliff than enclave-protected plaintext.
	shift := float64(results[0].CliffSubs) / float64(results[1].CliffSubs)
	fmt.Printf("aspe pages %.1f× earlier than sgx-plain under the same budget\n\n", shift)
	lines = append(lines, fmt.Sprintf(
		"BenchmarkPagingCliff/cliff/plain-over-aspe\t%8d\t%12.3f cliff-shift", 1, shift))

	if artifactPath != "" {
		art := benchArtifact{
			Commit: commit,
			Ref:    "main",
			Bench:  "BenchmarkPagingCliff",
			Note: fmt.Sprintf(
				"per-scheme paging cliff over the split-memory engine: one slice per scheme under a %d MB plaintext budget, e80a1 subscriptions registered in windows of %d (one simulated ecall each); cliff-subs is the first window whose split cache sealed/unsealed pages. Fully deterministic (seeded corpus, codec secrets, and cost model) — the CI gate diffs a fresh sweep against this artifact and any delta means the storage layout or cost model changed. cliff-subs and cliff-db-mb are higher-is-better (a later cliff means a denser store); cliff-shift is sgx-plain's cliff position over aspe's (the footprint gap: ~437 B/sub padded plaintext vs ~2156 B/sub ASPE ciphertext at 11 attributes)",
				cfg.EPCBytes>>20, step),
			Lines: lines,
		}
		raw, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(artifactPath, append(raw, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n\n", artifactPath)
	}
	if csvDir == "" {
		return nil
	}
	return writeCSV(filepath.Join(csvDir, "cliff.csv"), rec)
}

func runAblation(cfg exp.Config, csvDir string) error {
	fmt.Println("== Ablation: publications per ecall (paper §6: batching to amortise enclave transitions) ==")
	rows, err := exp.AblationBatching(cfg, []int{1, 2, 5, 10, 50, 100})
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "batch\tµs/op\ttransition share\t")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%.2f\t%.1f%%\t\n", r.BatchSize, r.Micros, r.TransitionShare*100)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Println()
	if csvDir == "" {
		return nil
	}
	rec := [][]string{{"batch", "us_per_op", "transition_share"}}
	for _, r := range rows {
		rec = append(rec, []string{
			strconv.Itoa(r.BatchSize), fmt.Sprintf("%.3f", r.Micros), fmt.Sprintf("%.4f", r.TransitionShare),
		})
	}
	return writeCSV(filepath.Join(csvDir, "ablation_batching.csv"), rec)
}

func runHorizontal(cfg exp.Config, csvDir string) error {
	fmt.Printf("== Ablation: horizontal scalability (paper §6: k enclave partitions, EPC=%d MB each, %d subs) ==\n",
		cfg.EPCBytes>>20, cfg.Fig8Subs)
	rows, err := exp.AblationHorizontal(cfg, nil)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "partitions\tDB MB\treg µs/sub\tmatch µs/pub (makespan)\tEPC faults\t")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%.1f\t%.2f\t%.2f\t%d\t\n",
			r.Partitions, r.DBMB, r.MicrosPerSub, r.MatchMicros, r.PageFaults)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Println()
	if csvDir == "" {
		return nil
	}
	rec := [][]string{{"partitions", "db_mb", "reg_us_per_sub", "match_us_makespan", "epc_faults"}}
	for _, r := range rows {
		rec = append(rec, []string{
			strconv.Itoa(r.Partitions), fmt.Sprintf("%.2f", r.DBMB),
			fmt.Sprintf("%.3f", r.MicrosPerSub), fmt.Sprintf("%.3f", r.MatchMicros),
			strconv.FormatUint(r.PageFaults, 10),
		})
	}
	return writeCSV(filepath.Join(csvDir, "ablation_horizontal.csv"), rec)
}

func runAlign(cfg exp.Config, csvDir string) error {
	fmt.Println("== Ablation: cache-line-aligned records (paper §6: fitting trees into cache lines) ==")
	rows, err := exp.AblationCacheAlign(cfg)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "layout\tout µs/op\tin µs/op\tout miss rate\tfootprint MB\t")
	for _, r := range rows {
		layout := "natural"
		if r.Aligned {
			layout = "aligned"
		}
		fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%.1f%%\t%.1f\t\n",
			layout, r.OutMicros, r.InMicros, r.OutMissRate*100, r.FootprintMB)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Println()
	if csvDir == "" {
		return nil
	}
	rec := [][]string{{"aligned", "out_us", "in_us", "out_miss_rate", "footprint_mb"}}
	for _, r := range rows {
		rec = append(rec, []string{
			strconv.FormatBool(r.Aligned),
			fmt.Sprintf("%.3f", r.OutMicros), fmt.Sprintf("%.3f", r.InMicros),
			fmt.Sprintf("%.4f", r.OutMissRate), fmt.Sprintf("%.2f", r.FootprintMB),
		})
	}
	return writeCSV(filepath.Join(csvDir, "ablation_align.csv"), rec)
}

func runSwitchless(cfg exp.Config, csvDir string) error {
	fmt.Println("== Ablation: enclave-border delivery (paper §6: ecalls vs batching vs switchless ring) ==")
	rows, err := exp.AblationSwitchless(cfg)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "mode\tµs/op\ttransition share\ttransitions\t")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.2f\t%.2f%%\t%d\t\n", r.Mode, r.Micros, r.TransitionShare*100, r.Transitions)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Println()
	if csvDir == "" {
		return nil
	}
	rec := [][]string{{"mode", "us_per_op", "transition_share", "transitions"}}
	for _, r := range rows {
		rec = append(rec, []string{
			r.Mode, fmt.Sprintf("%.3f", r.Micros),
			fmt.Sprintf("%.5f", r.TransitionShare), strconv.FormatUint(r.Transitions, 10),
		})
	}
	return writeCSV(filepath.Join(csvDir, "ablation_switchless.csv"), rec)
}

func runSplit(cfg exp.Config, csvDir string) error {
	fmt.Printf("== Ablation: split memory (paper §6: enclaved + external tree parts; budget=%d MB) ==\n", cfg.EPCBytes>>20)
	rows, err := exp.AblationSplit(cfg)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "subs\tDB MB\tout µs/sub\tEPC µs/sub\tsplit µs/sub\tEPC ratio\tsplit ratio\tEPC faults\tsplit faults\tseals\t")
	step := len(rows) / 20
	if step == 0 {
		step = 1
	}
	for i, r := range rows {
		if i%step != 0 && i != len(rows)-1 {
			continue // condense the console table; the CSV has all rows
		}
		fmt.Fprintf(w, "%d\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%d\t%d\t%d\t\n",
			r.Subs, r.DBMB, r.OutMicros, r.EPCMicros, r.SplitMicros,
			r.EPCRatio, r.SplitRatio, r.EPCFaults, r.SplitFaults, r.SplitWritebacks)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Println()
	if csvDir == "" {
		return nil
	}
	rec := [][]string{{"subs", "db_mb", "out_us", "epc_us", "split_us", "epc_ratio", "split_ratio", "epc_faults", "split_faults", "split_writebacks"}}
	for _, r := range rows {
		rec = append(rec, []string{
			strconv.Itoa(r.Subs), fmt.Sprintf("%.2f", r.DBMB),
			fmt.Sprintf("%.2f", r.OutMicros), fmt.Sprintf("%.2f", r.EPCMicros), fmt.Sprintf("%.2f", r.SplitMicros),
			fmt.Sprintf("%.2f", r.EPCRatio), fmt.Sprintf("%.2f", r.SplitRatio),
			strconv.FormatUint(r.EPCFaults, 10), strconv.FormatUint(r.SplitFaults, 10), strconv.FormatUint(r.SplitWritebacks, 10),
		})
	}
	return writeCSV(filepath.Join(csvDir, "ablation_split.csv"), rec)
}

func runTable1(cfg exp.Config, csvDir string) error {
	rows, err := exp.Table1Stats(cfg, 20_000)
	if err != nil {
		return err
	}
	fmt.Println("== Table 1: workload characteristics (realised over 20k subscriptions) ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "workload\tattr factor\tdistribution\tpub attrs\teq-predicate mix (spec → realised)")
	for _, r := range rows {
		mixes := make([]string, 0, len(r.Spec.EqMix))
		for _, c := range r.Spec.EqMix {
			mixes = append(mixes, fmt.Sprintf("%d eq: %.0f%%→%.1f%%", c.NumEq, c.Frac*100, r.Mix.EqFrac[c.NumEq]*100))
		}
		fmt.Fprintf(w, "%s\t×%d\t%s\t%d–%d (avg %.1f)\t%s\n",
			r.Name, r.Spec.AttrFactor, r.Spec.Dist, r.MinAttrs, r.MaxAttrs, r.AvgAttrs, strings.Join(mixes, ", "))
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Println()
	if csvDir == "" {
		return nil
	}
	rec := [][]string{{"workload", "attr_factor", "dist", "min_attrs", "max_attrs", "avg_attrs", "avg_preds"}}
	for _, r := range rows {
		rec = append(rec, []string{
			r.Name, strconv.Itoa(r.Spec.AttrFactor), r.Spec.Dist.String(),
			strconv.Itoa(r.MinAttrs), strconv.Itoa(r.MaxAttrs),
			fmt.Sprintf("%.2f", r.AvgAttrs), fmt.Sprintf("%.2f", r.Mix.AvgPreds),
		})
	}
	return writeCSV(filepath.Join(csvDir, "table1.csv"), rec)
}

func runFig5(cfg exp.Config, csvDir string) error {
	fmt.Println("== Figure 5: overhead of encryption and enclave (e100a1, µs/op) ==")
	rows, err := exp.Figure5(cfg)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "subs\tIn AES\tIn plain\tOut AES\tOut plain\tin/out\t")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t\n",
			r.Subs, r.InAES, r.InPlain, r.OutAES, r.OutPlain, r.InAES/r.OutAES)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Println()
	if csvDir == "" {
		return nil
	}
	rec := [][]string{{"subs", "in_aes_us", "in_plain_us", "out_aes_us", "out_plain_us"}}
	for _, r := range rows {
		rec = append(rec, []string{
			strconv.Itoa(r.Subs),
			fmt.Sprintf("%.3f", r.InAES), fmt.Sprintf("%.3f", r.InPlain),
			fmt.Sprintf("%.3f", r.OutAES), fmt.Sprintf("%.3f", r.OutPlain),
		})
	}
	return writeCSV(filepath.Join(csvDir, "fig5.csv"), rec)
}

func runFig6(cfg exp.Config, csvDir string) error {
	fmt.Println("== Figure 6: containment-based matching per workload (plaintext, outside; µs/op) ==")
	rows, err := exp.Figure6(cfg)
	if err != nil {
		return err
	}
	names := make([]string, 0, 9)
	for _, s := range workload.Table1() {
		names = append(names, s.Name)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(w, "subs\t%s\t\n", strings.Join(names, "\t"))
	for _, r := range rows {
		cells := make([]string, 0, len(names))
		for _, n := range names {
			cells = append(cells, fmt.Sprintf("%.2f", r.Micros[n]))
		}
		fmt.Fprintf(w, "%d\t%s\t\n", r.Subs, strings.Join(cells, "\t"))
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Println()
	if csvDir == "" {
		return nil
	}
	rec := [][]string{append([]string{"subs"}, names...)}
	for _, r := range rows {
		row := []string{strconv.Itoa(r.Subs)}
		for _, n := range names {
			row = append(row, fmt.Sprintf("%.3f", r.Micros[n]))
		}
		rec = append(rec, row)
	}
	return writeCSV(filepath.Join(csvDir, "fig6.csv"), rec)
}

func runFig7(cfg exp.Config, name, csvDir string) error {
	var panels map[string][]exp.Fig7Row
	if name == "all" {
		var err error
		panels, err = exp.Figure7All(cfg)
		if err != nil {
			return err
		}
	} else {
		rows, err := exp.Figure7(cfg, name)
		if err != nil {
			return err
		}
		panels = map[string][]exp.Fig7Row{name: rows}
	}
	names := make([]string, 0, len(panels))
	for n := range panels {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("== Figure 7 [%s]: Out ASPE vs In AES vs Out AES (µs/op) + LLC miss rate ==\n", n)
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
		fmt.Fprintln(w, "subs\tOut ASPE\tIn AES\tOut AES\tASPE/SCBR\tmiss rate\t")
		for _, r := range panels[n] {
			fmt.Fprintf(w, "%d\t%.1f\t%.2f\t%.2f\t%.0f×\t%.1f%%\t\n",
				r.Subs, r.OutASPE, r.InAES, r.OutAES, r.OutASPE/r.OutAES, r.MissRate*100)
		}
		if err := w.Flush(); err != nil {
			return err
		}
		fmt.Println()
		if csvDir != "" {
			rec := [][]string{{"subs", "out_aspe_us", "in_aes_us", "out_aes_us", "miss_rate"}}
			for _, r := range panels[n] {
				rec = append(rec, []string{
					strconv.Itoa(r.Subs),
					fmt.Sprintf("%.3f", r.OutASPE), fmt.Sprintf("%.3f", r.InAES),
					fmt.Sprintf("%.3f", r.OutAES), fmt.Sprintf("%.4f", r.MissRate),
				})
			}
			if err := writeCSV(filepath.Join(csvDir, "fig7_"+n+".csv"), rec); err != nil {
				return err
			}
		}
	}
	return nil
}

func runFig8(cfg exp.Config, csvDir string) error {
	fmt.Printf("== Figure 8: registration cost past the EPC limit (e80a1, EPC=%d MB) ==\n", cfg.EPCBytes>>20)
	rows, err := exp.Figure8(cfg)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "subs\tDB MB\tin µs/sub\tout µs/sub\ttime ratio\tfault ratio\t")
	step := len(rows) / 20
	if step == 0 {
		step = 1
	}
	for i, r := range rows {
		if i%step != 0 && i != len(rows)-1 {
			continue // condense the console table; the CSV has all rows
		}
		fmt.Fprintf(w, "%d\t%.1f\t%.1f\t%.1f\t%.1f\t%.0f\t\n",
			r.Subs, r.DBMB, r.InMicros, r.OutMicros, r.TimeRatio, r.FaultRatio)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Println()
	if csvDir == "" {
		return nil
	}
	rec := [][]string{{"subs", "db_mb", "in_us", "out_us", "time_ratio", "fault_ratio"}}
	for _, r := range rows {
		rec = append(rec, []string{
			strconv.Itoa(r.Subs), fmt.Sprintf("%.2f", r.DBMB),
			fmt.Sprintf("%.2f", r.InMicros), fmt.Sprintf("%.2f", r.OutMicros),
			fmt.Sprintf("%.2f", r.TimeRatio), fmt.Sprintf("%.1f", r.FaultRatio),
		})
	}
	return writeCSV(filepath.Join(csvDir, "fig8.csv"), rec)
}

func writeCSV(path string, records [][]string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	cw := csv.NewWriter(f)
	if err := cw.WriteAll(records); err != nil {
		_ = f.Close()
		return err
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
