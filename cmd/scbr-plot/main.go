// Command scbr-plot renders the CSV series written by scbr-bench as
// ASCII charts, reproducing the look of the paper's figures in a
// terminal.
//
// Usage:
//
//	scbr-bench -fig6 -csv results/
//	scbr-plot -logx -logy -x subs results/fig6.csv
//	scbr-plot -logx -logy -x subs -cols out_aspe_us,out_aes_us results/fig7_e80a1.csv
//	scbr-plot -x db_mb -cols epc_ratio,split_ratio results/ablation_split.csv
//
// By default the first numeric column is the x axis and every other
// numeric column becomes a series.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"scbr/internal/plot"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "scbr-plot:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		xCol   = flag.String("x", "", "x-axis column (default: first numeric column)")
		cols   = flag.String("cols", "", "comma-separated series columns (default: every other numeric column)")
		logX   = flag.Bool("logx", false, "logarithmic x axis")
		logY   = flag.Bool("logy", false, "logarithmic y axis")
		width  = flag.Int("w", 72, "plot width in characters")
		height = flag.Int("h", 22, "plot height in characters")
		title  = flag.String("title", "", "chart title (default: file name)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		return fmt.Errorf("exactly one CSV file expected, got %d", flag.NArg())
	}
	path := flag.Arg(0)
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	table, err := plot.ReadTable(f)
	if err != nil {
		return err
	}

	numeric := table.NumericColumns()
	if len(numeric) < 2 {
		return fmt.Errorf("%s has %d numeric columns, need at least an x and one series", path, len(numeric))
	}
	x := *xCol
	if x == "" {
		x = numeric[0]
	}
	var names []string
	if *cols != "" {
		for _, c := range strings.Split(*cols, ",") {
			names = append(names, strings.TrimSpace(c))
		}
	} else {
		for _, c := range numeric {
			if c != x {
				names = append(names, c)
			}
		}
	}

	xs, err := table.Float(x)
	if err != nil {
		return err
	}
	series := make([]plot.Series, 0, len(names))
	for _, name := range names {
		ys, err := table.Float(name)
		if err != nil {
			return err
		}
		series = append(series, plot.Series{Name: name, X: xs, Y: ys})
	}

	t := *title
	if t == "" {
		t = filepath.Base(path)
	}
	out, err := plot.Render(series, plot.Options{
		Width: *width, Height: *height,
		LogX: *logX, LogY: *logY,
		Title: t, XLabel: x,
	})
	if err != nil {
		return err
	}
	fmt.Print(out)
	return nil
}
