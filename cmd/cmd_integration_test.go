// Package cmd_test drives the built scbr-router / scbr-publisher /
// scbr-subscriber binaries end to end over loopback TCP: trust-bundle
// hand-off, attestation, a workload feed, and filtered delivery.
package cmd_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// freePort reserves a loopback port.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	_ = l.Close()
	return addr
}

// waitListening polls until addr accepts connections.
func waitListening(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		conn, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err == nil {
			_ = conn.Close()
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("%s never started listening", addr)
}

func waitFile(t *testing.T, path string) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := os.Stat(path); err == nil {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("%s never appeared", path)
}

// TestCLIFederation boots two scbr-router processes into an attested
// overlay (they exchange trust bundles through the filesystem, as a
// bootstrapping fleet would) and reads the link state off the metrics
// endpoint.
func TestCLIFederation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs two router binaries")
	}
	bin := t.TempDir()
	out, err := exec.Command("go", "build", "-o", filepath.Join(bin, "scbr-router"), "scbr/cmd/scbr-router").CombinedOutput()
	if err != nil {
		t.Fatalf("building scbr-router: %v\n%s", err, out)
	}
	work := t.TempDir()
	trustA := filepath.Join(work, "trust-a.json")
	trustB := filepath.Join(work, "trust-b.json")
	addrA := freePort(t)
	addrB := freePort(t)
	metricsA := freePort(t)

	start := func(args ...string) {
		cmd := exec.Command(filepath.Join(bin, "scbr-router"), args...)
		cmd.Dir = work
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting scbr-router: %v", err)
		}
		t.Cleanup(func() {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		})
	}
	start("-listen", addrA, "-trust", trustA, "-platform", "cli-fed-a",
		"-router-id", "cli-a", "-peer-trust", trustB, "-metrics-addr", metricsA)
	start("-listen", addrB, "-trust", trustB, "-platform", "cli-fed-b",
		"-router-id", "cli-b", "-peer", addrA, "-peer-trust", trustA)

	waitListening(t, metricsA)
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get("http://" + metricsA + "/metrics")
		if err == nil {
			var snapshot struct {
				DeliveryQueues map[string]int `json:"delivery_queues"`
				Latency        *struct {
					Total struct {
						Count uint64 `json:"count"`
					} `json:"total"`
				} `json:"latency"`
				Federation struct {
					Peers int `json:"peers"`
				} `json:"federation"`
			}
			err = json.NewDecoder(resp.Body).Decode(&snapshot)
			_ = resp.Body.Close()
			if err == nil && snapshot.Federation.Peers >= 1 {
				if snapshot.DeliveryQueues == nil {
					t.Fatal("metrics endpoint omitted delivery queue depths")
				}
				if snapshot.Latency == nil {
					t.Fatal("metrics endpoint omitted delivery latency percentiles")
				}
				return // attested link up, metrics readable
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("routers never reported an attested peer link on /metrics")
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// TestCLIDeployment drives router + publisher + subscriber end to end
// once per registered matching scheme — the CLI half of the paper's
// plain-vs-ASPE comparison. Setting SCBR_SCHEME restricts the run to
// one scheme (the CI matrix does).
func TestCLIDeployment(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs three binaries")
	}
	bin := t.TempDir()
	for _, tool := range []string{"scbr-router", "scbr-publisher", "scbr-subscriber"} {
		out, err := exec.Command("go", "build", "-o", filepath.Join(bin, tool), "scbr/cmd/"+tool).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, out)
		}
	}
	for _, schemeName := range []string{"sgx-plain", "aspe"} {
		if only := os.Getenv("SCBR_SCHEME"); only != "" && only != schemeName {
			continue
		}
		t.Run(schemeName, func(t *testing.T) {
			runCLIDeployment(t, bin, schemeName)
		})
	}
}

func runCLIDeployment(t *testing.T, bin, schemeName string) {
	work := t.TempDir()
	trust := filepath.Join(work, "trust.json")
	pubKey := filepath.Join(work, "pub.json")
	routerAddr := freePort(t)
	pubAddr := freePort(t)

	var wg sync.WaitGroup
	start := func(name string, args ...string) *exec.Cmd {
		cmd := exec.Command(filepath.Join(bin, name), args...)
		cmd.Dir = work
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting %s: %v", name, err)
		}
		t.Cleanup(func() {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		})
		return cmd
	}

	start("scbr-router", "-listen", routerAddr, "-trust", trust, "-scheme", schemeName,
		"-platform", "cli-"+schemeName)
	waitFile(t, trust)
	waitListening(t, routerAddr)

	start("scbr-publisher",
		"-router", routerAddr, "-trust", trust,
		"-listen", pubAddr, "-key", pubKey, "-scheme", schemeName,
		"-feed", "e80a1", "-count", "0", "-interval", "50ms", "-seed", "3")
	waitFile(t, pubKey)
	waitListening(t, pubAddr)

	// Subscriber with a broad filter; capture its stdout.
	sub := exec.Command(filepath.Join(bin, "scbr-subscriber"),
		"-id", "cli-test",
		"-publisher", pubAddr, "-router", routerAddr, "-key", pubKey,
		"-sub", "close > 0", "-count", "3")
	sub.Dir = work
	stdout, err := sub.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	sub.Stderr = os.Stderr
	if err := sub.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = sub.Process.Kill()
		_, _ = sub.Process.Wait()
	})

	lines := make(chan string, 16)
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(lines)
		sc := bufio.NewScanner(stdout)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			lines <- sc.Text()
		}
	}()
	defer wg.Wait()

	received := 0
	deadline := time.After(60 * time.Second)
	for received < 3 {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("subscriber exited after %d deliveries", received)
			}
			if strings.Contains(line, "payload=") {
				received++
				if !strings.Contains(line, "close") {
					t.Fatalf("payload does not look like a quote: %s", line)
				}
			}
		case <-deadline:
			t.Fatalf("timed out with %d deliveries", received)
		}
	}
	fmt.Printf("CLI deployment (%s) delivered %d quotes\n", schemeName, received)
}
