// Command scbr-loadgen runs the production-shaped load harness: it
// stands up live in-process topologies across a declarative
// (partitions × scheme × routers) matrix, registers a zipf
// subscription population through the bulk path, drives publish
// storms, a flash crowd, and reconnect churn at the measured
// listeners, and writes a self-describing JSON artifact with
// throughput, delivery-latency percentiles, gap counts, and a host
// baseline.
//
// Usage:
//
//	scbr-loadgen -scenario smoke -out BENCH_pr6.json [-commit <sha>]
//	scbr-loadgen -spec scenario.json -out out.json
//	scbr-loadgen -list
//
// -scenario names a builtin; -spec loads a JSON scenario file
// (unknown fields are rejected); -seed overrides the scenario's seed.
// The run fails (exit 1) if any cell leaves events unaccounted —
// deliveries that were neither received nor reported as resume gaps.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"scbr/internal/loadgen"
)

func main() {
	if err := run(); err != nil {
		log.Fatalf("scbr-loadgen: %v", err)
	}
}

func run() error {
	var (
		scenarioName = flag.String("scenario", "", "builtin scenario to run (see -list)")
		specPath     = flag.String("spec", "", "path to a JSON scenario file")
		out          = flag.String("out", "", "artifact path (default: stdout)")
		seed         = flag.Int64("seed", 0, "override the scenario seed (0 = keep)")
		commit       = flag.String("commit", "", "commit hash recorded in the host baseline")
		list         = flag.Bool("list", false, "list builtin scenarios and exit")
	)
	flag.Parse()

	if *list {
		for _, name := range loadgen.BuiltinNames() {
			s, err := loadgen.Builtin(name)
			if err != nil {
				return err
			}
			fmt.Printf("%-8s %s\n", name, s.Description)
		}
		return nil
	}

	var scenario *loadgen.Scenario
	switch {
	case *scenarioName != "" && *specPath != "":
		return fmt.Errorf("-scenario and -spec are mutually exclusive")
	case *scenarioName != "":
		s, err := loadgen.Builtin(*scenarioName)
		if err != nil {
			return err
		}
		scenario = s
	case *specPath != "":
		f, err := os.Open(*specPath)
		if err != nil {
			return err
		}
		s, err := loadgen.ParseScenario(f)
		f.Close()
		if err != nil {
			return err
		}
		scenario = s
	default:
		return fmt.Errorf("one of -scenario or -spec is required (try -list)")
	}
	if *seed != 0 {
		scenario.Seed = *seed
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	logf := func(format string, args ...any) { log.Printf(format, args...) }
	res, err := loadgen.Run(ctx, scenario, logf, *commit)
	if err != nil {
		return err
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := res.WriteJSON(w); err != nil {
		return err
	}

	var unaccounted uint64
	for _, c := range res.Cells {
		unaccounted += c.Unaccounted
	}
	if unaccounted > 0 {
		return fmt.Errorf("%d deliveries unaccounted (neither received nor gap-reported)", unaccounted)
	}
	return nil
}
