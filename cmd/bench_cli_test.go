package cmd_test

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestBenchAndPlotCLIs runs scbr-bench at a tiny scale covering the
// figure harness and all §6 ablations, checks the CSV artefacts, and
// renders one of them with scbr-plot.
func TestBenchAndPlotCLIs(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs two binaries")
	}
	bin := t.TempDir()
	for _, tool := range []string{"scbr-bench", "scbr-plot"} {
		out, err := exec.Command("go", "build", "-o", filepath.Join(bin, tool), "scbr/cmd/"+tool).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, out)
		}
	}
	csvDir := t.TempDir()

	bench := func(args ...string) string {
		t.Helper()
		out, err := exec.Command(filepath.Join(bin, "scbr-bench"), args...).CombinedOutput()
		if err != nil {
			t.Fatalf("scbr-bench %v: %v\n%s", args, err, out)
		}
		return string(out)
	}

	out := bench("-fig5", "-sizes", "200,500", "-pubs", "30", "-csv", csvDir)
	if !strings.Contains(out, "Figure 5") {
		t.Fatalf("fig5 banner missing:\n%s", out)
	}
	out = bench("-switchless", "-sizes", "400", "-pubs", "60", "-csv", csvDir)
	if !strings.Contains(out, "switchless") {
		t.Fatalf("switchless row missing:\n%s", out)
	}
	out = bench("-align", "-sizes", "400", "-pubs", "30", "-csv", csvDir)
	if !strings.Contains(out, "aligned") {
		t.Fatalf("aligned row missing:\n%s", out)
	}
	out = bench("-split", "-fig8subs", "3000", "-fig8step", "500", "-epc", "1", "-pad", "400", "-csv", csvDir)
	if !strings.Contains(out, "split ratio") {
		t.Fatalf("split header missing:\n%s", out)
	}

	for _, f := range []string{"fig5.csv", "ablation_switchless.csv", "ablation_align.csv", "ablation_split.csv"} {
		p := filepath.Join(csvDir, f)
		plotArgs := []string{p}
		switch f {
		case "fig5.csv":
			plotArgs = []string{"-logx", "-logy", "-x", "subs", p}
		case "ablation_split.csv":
			plotArgs = []string{"-x", "db_mb", "-cols", "epc_ratio,split_ratio", p}
		case "ablation_switchless.csv":
			// The mode column is textual; plot µs against transitions.
			plotArgs = []string{"-logx", "-x", "transitions", "-cols", "us_per_op", p}
		case "ablation_align.csv":
			// Two rows (natural, aligned); x = footprint.
			plotArgs = []string{"-x", "footprint_mb", "-cols", "out_us,in_us", p}
		}
		out, err := exec.Command(filepath.Join(bin, "scbr-plot"), plotArgs...).CombinedOutput()
		if err != nil {
			t.Fatalf("scbr-plot %v: %v\n%s", plotArgs, err, out)
		}
		if !strings.Contains(string(out), "|") {
			t.Fatalf("plot of %s produced no chart:\n%s", f, out)
		}
	}
}
