package scbr_test

import (
	"context"
	"fmt"
	"net"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"scbr"
)

// batchHarness is a full public-API deployment parameterised over the
// batch-first matrix: matching scheme, partition count, switchless.
type batchHarness struct {
	router    *scbr.Router
	publisher *scbr.Publisher
	routerLn  net.Listener
	pubLn     net.Listener
}

func newBatchHarness(t *testing.T, ctx context.Context, schemeName string, partitions int, switchless bool, extra ...scbr.Option) *batchHarness {
	t.Helper()
	opts := []scbr.Option{
		scbr.WithScheme(schemeName,
			scbr.WithSchemeAttrs("symbol", "price", "volume"),
			scbr.WithSchemeSeed(17),
			scbr.WithSchemeScale("price", 200),
			scbr.WithSchemeScale("volume", 10_000)),
		scbr.WithPartitions(partitions),
	}
	if switchless {
		opts = append(opts, scbr.WithSwitchless())
	}
	opts = append(opts, extra...)
	seed := fmt.Sprintf("batch-%s-%d-%v", schemeName, partitions, switchless)
	dev, err := scbr.NewDevice([]byte(seed))
	if err != nil {
		t.Fatal(err)
	}
	quoter, err := scbr.NewQuoter(dev, seed+"-platform")
	if err != nil {
		t.Fatal(err)
	}
	ias := scbr.NewAttestationService()
	ias.RegisterPlatform(quoter.PlatformID(), quoter.AttestationKey())
	signer, err := scbr.NewKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	h := &batchHarness{}
	h.router, err = scbr.NewRouter(dev, quoter, []byte(seed+" image"), signer.Public(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	h.routerLn, err = net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = h.router.Serve(ctx, h.routerLn) }()
	t.Cleanup(h.router.Close)
	h.publisher, err = scbr.NewPublisher(ias, h.router.Identity(),
		scbr.WithScheme(schemeName,
			scbr.WithSchemeAttrs("symbol", "price", "volume"),
			scbr.WithSchemeSeed(17),
			scbr.WithSchemeScale("price", 200),
			scbr.WithSchemeScale("volume", 10_000)))
	if err != nil {
		t.Fatal(err)
	}
	rc, err := net.Dial("tcp", h.routerLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := h.publisher.ConnectRouter(ctx, rc); err != nil {
		t.Fatal(err)
	}
	h.pubLn, err = net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = h.pubLn.Close() })
	go func() {
		for {
			conn, err := h.pubLn.Accept()
			if err != nil {
				return
			}
			go h.publisher.ServeClient(ctx, conn)
		}
	}()
	return h
}

func (h *batchHarness) client(t *testing.T, ctx context.Context, id string) *scbr.Client {
	t.Helper()
	c, err := scbr.NewClient(id)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := net.Dial("tcp", h.pubLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c.ConnectPublisher(pc, h.publisher.PublicKey())
	rc, err := net.Dial("tcp", h.routerLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Attach(ctx, rc); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// delivered is one observed delivery: which event (by payload) reached
// a handle naming which subscriptions.
type delivered struct {
	payload string
	subIDs  []uint64
}

// drainUntil collects a handle's deliveries until the sentinel payload
// arrives, returning them sentinel excluded.
func drainUntil(t *testing.T, ctx context.Context, sub *scbr.Subscription, sentinel string) []delivered {
	t.Helper()
	var out []delivered
	for {
		del, err := sub.Next(ctx)
		if err != nil {
			t.Fatalf("draining deliveries: %v (got %v)", err, out)
		}
		if string(del.Payload) == sentinel {
			return out
		}
		ids := append([]uint64(nil), del.SubIDs...)
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		out = append(out, delivered{payload: string(del.Payload), subIDs: ids})
	}
}

// TestPublishBatchEquivalence is the end-to-end batch-matching
// property across the full deployment matrix: a batch publish yields
// exactly the deliveries — same events, same subscription IDs, same
// per-client order — that the same events published one at a time
// yield, for both matching schemes, 1 and 4 partitions, and both the
// synchronous and the switchless publication paths.
func TestPublishBatchEquivalence(t *testing.T) {
	events := []scbr.EventSpec{
		quoteEvent("HAL", 42, 100),   // narrow + wide
		quoteEvent("HAL", 75, 100),   // wide only
		quoteEvent("IBM", 42, 100),   // volume only (symbol mismatch)
		quoteEvent("HAL", 120, 9000), // volume only
		quoteEvent("HAL", 10, 8000),  // all three
	}
	for _, schemeName := range []string{scbr.SchemePlain, scbr.SchemeASPE} {
		for _, partitions := range []int{1, 4} {
			for _, switchless := range []bool{false, true} {
				name := fmt.Sprintf("%s/partitions=%d/switchless=%v", schemeName, partitions, switchless)
				t.Run(name, func(t *testing.T) {
					ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
					defer cancel()
					h := newBatchHarness(t, ctx, schemeName, partitions, switchless)
					client := h.client(t, ctx, "observer")
					subs := make([]*scbr.Subscription, 0, 3)
					for _, src := range []string{
						`symbol = "HAL", price < 50`,
						`symbol = "HAL", price < 100`,
						`volume > 500`,
					} {
						spec, err := scbr.ParseSpec(src)
						if err != nil {
							t.Fatal(err)
						}
						sub, err := client.Subscribe(ctx, spec)
						if err != nil {
							t.Fatal(err)
						}
						subs = append(subs, sub)
					}
					sentinel := quoteEvent("HAL", 1, 9999) // matches every subscription

					// Phase 1: the events one Publish at a time.
					for i, ev := range events {
						if err := h.publisher.Publish(ctx, ev, []byte(fmt.Sprintf("e%d", i))); err != nil {
							t.Fatal(err)
						}
					}
					if err := h.publisher.Publish(ctx, sentinel, []byte("flush-single")); err != nil {
						t.Fatal(err)
					}
					singles := make([][]delivered, len(subs))
					for i, sub := range subs {
						singles[i] = drainUntil(t, ctx, sub, "flush-single")
					}

					// Phase 2: the same events as one PublishBatch.
					batch := make([]scbr.Event, len(events))
					for i, ev := range events {
						batch[i] = scbr.Event{Header: ev, Payload: []byte(fmt.Sprintf("e%d", i))}
					}
					if err := h.publisher.PublishBatch(ctx, batch); err != nil {
						t.Fatal(err)
					}
					if err := h.publisher.Publish(ctx, sentinel, []byte("flush-batch")); err != nil {
						t.Fatal(err)
					}
					for i, sub := range subs {
						batched := drainUntil(t, ctx, sub, "flush-batch")
						if !reflect.DeepEqual(batched, singles[i]) {
							t.Fatalf("sub %d: batch deliveries %v != per-item deliveries %v", i, batched, singles[i])
						}
					}
				})
			}
		}
	}
}

func quoteEvent(symbol string, price float64, volume int64) scbr.EventSpec {
	return scbr.EventSpec{Attrs: []scbr.NamedValue{
		{Name: "symbol", Value: scbr.Str(symbol)},
		{Name: "price", Value: scbr.Float(price)},
		{Name: "volume", Value: scbr.Int(volume)},
	}}
}

// TestBatchPoolingStress hammers the pooled frame path — batch and
// single publishes interleaved from concurrent goroutines through the
// switchless multi-partition pipeline — and checks that every
// delivered payload arrives exactly once and intact. Pooled send
// buffers, reused frame buffers, or recycled match jobs aliasing a
// retained delivery would surface here as corrupt/duplicate payloads,
// and as data races under -race.
func TestBatchPoolingStress(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	// OverflowPause: the collector must see every event exactly once,
	// so slow-consumer eviction is traded for producer backpressure.
	h := newBatchHarness(t, ctx, scbr.SchemePlain, 4, true, scbr.WithOverflowPolicy(scbr.OverflowPause))
	client := h.client(t, ctx, "collector")
	spec, err := scbr.ParseSpec(`volume > 0`) // matches every stress event
	if err != nil {
		t.Fatal(err)
	}
	sub, err := client.Subscribe(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	const (
		producers = 4
		rounds    = 20
		batchSize = 8
		perRound  = batchSize + 1 // one batch + one single publish
		totalSent = producers * rounds * perRound
	)
	var wg sync.WaitGroup
	errc := make(chan error, producers)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				batch := make([]scbr.Event, batchSize)
				for j := range batch {
					batch[j] = scbr.Event{
						Header:  quoteEvent("HAL", float64(j), int64(1+j)),
						Payload: []byte(fmt.Sprintf("p%d-r%d-b%d", p, r, j)),
					}
				}
				if err := h.publisher.PublishBatch(ctx, batch); err != nil {
					errc <- err
					return
				}
				if err := h.publisher.Publish(ctx, quoteEvent("HAL", 5, 50), []byte(fmt.Sprintf("p%d-r%d-s", p, r))); err != nil {
					errc <- err
					return
				}
			}
		}(p)
	}
	seen := make(map[string]int, totalSent)
	for i := 0; i < totalSent; i++ {
		del, err := sub.Next(ctx)
		if err != nil {
			t.Fatalf("delivery %d/%d: %v", i, totalSent, err)
		}
		seen[string(del.Payload)]++
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if len(seen) != totalSent {
		t.Fatalf("distinct payloads = %d, want %d (duplicate or corrupt frames)", len(seen), totalSent)
	}
	for payload, n := range seen {
		if n != 1 {
			t.Fatalf("payload %q delivered %d times", payload, n)
		}
	}
}
