module scbr

go 1.24
